package pubsub

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadHandshake feeds arbitrary bytes to the subscriber handshake
// parser (both the versioned and the legacy first-byte-count forms).
// The parser must never panic, must bound the channel count, and any
// successfully parsed handshake must round-trip through writeHandshake.
func FuzzReadHandshake(f *testing.F) {
	// Modern handshake produced by the real writer.
	var modern bytes.Buffer
	if err := writeHandshake(&modern, []string{"sysprof.interactions", "sysprof.aggregates"}); err != nil {
		f.Fatal(err)
	}
	f.Add(modern.Bytes())

	// Sharded subscription (shard 2 of 8).
	var sharded bytes.Buffer
	if err := writeHandshakeSharded(&sharded, []string{"sysprof.interactions"},
		ShardSelector{Index: 2, Count: 8}); err != nil {
		f.Fatal(err)
	}
	f.Add(sharded.Bytes())

	// Legacy form: first byte is the channel count, then 4-byte
	// little-endian length-prefixed names.
	legacy := []byte{1}
	legacy = binary.LittleEndian.AppendUint32(legacy, 4)
	legacy = append(legacy, "chan"...)
	f.Add(legacy)

	// Edges: huge declared channel count, huge string length, empty.
	f.Add([]byte{handshakeMagic, 1, 0, 0, 0xFF, 0xFF})
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})

	// Wiretaint-identified boundaries. Channel count around
	// maxHandshakeChannels (cap-1, cap, cap+1, uint16 max): exactly the
	// cap must parse, one over must be rejected before the per-channel
	// loop allocates anything.
	capHdr := func(count uint16) []byte {
		b := []byte{handshakeMagic, 1, 0, 0}
		return binary.LittleEndian.AppendUint16(b, count)
	}
	full := capHdr(maxHandshakeChannels)
	for i := 0; i < maxHandshakeChannels; i++ {
		full = binary.LittleEndian.AppendUint32(full, 0) // empty name
	}
	f.Add(full)
	f.Add(capHdr(maxHandshakeChannels - 1))
	f.Add(capHdr(maxHandshakeChannels + 1))
	f.Add(capHdr(0xFFFF))

	// String length around the 1<<20 cap: at-cap costs memory only as
	// bytes actually arrive (chunked reads), one over is rejected before
	// any allocation.
	atCap := binary.LittleEndian.AppendUint32(capHdr(1), 1<<20)
	f.Add(append(atCap, make([]byte, 4096)...)) // truncated body
	f.Add(binary.LittleEndian.AppendUint32(capHdr(1), 1<<20-1))
	f.Add(binary.LittleEndian.AppendUint32(capHdr(1), 1<<20+1))

	f.Fuzz(func(t *testing.T, data []byte) {
		hs, err := readHandshake(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(hs.channels) > maxHandshakeChannels {
			t.Fatalf("parsed %d channels, limit is %d", len(hs.channels), maxHandshakeChannels)
		}
		if hs.sel.Count != 0 && !hs.sel.Valid() {
			t.Fatalf("parsed invalid shard selector %d/%d", hs.sel.Index, hs.sel.Count)
		}
		var out bytes.Buffer
		if err := writeHandshakeSharded(&out, hs.channels, hs.sel); err != nil {
			t.Fatalf("re-encode parsed handshake: %v", err)
		}
		hs2, err := readHandshake(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse written handshake: %v", err)
		}
		if hs2.sel != hs.sel {
			t.Fatalf("round trip changed shard selector: %v != %v", hs2.sel, hs.sel)
		}
		if len(hs2.channels) != len(hs.channels) {
			t.Fatalf("round trip changed channel count: %d != %d", len(hs2.channels), len(hs.channels))
		}
		for i := range hs.channels {
			if hs2.channels[i] != hs.channels[i] {
				t.Fatalf("round trip changed channel %d: %q != %q", i, hs2.channels[i], hs.channels[i])
			}
		}
	})
}
