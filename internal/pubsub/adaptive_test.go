package pubsub

import (
	"testing"
	"time"
)

func TestAdaptivePolicyResolution(t *testing.T) {
	rc := &remoteConn{}
	const timeout = 10 * time.Millisecond

	// No delivery observed yet: blocking would burn the full deadline
	// for a frame that gets dropped anyway.
	if got := rc.adaptivePolicy(timeout, ""); got != DropOldest {
		t.Fatalf("undelivered connection resolved to %v, want DropOldest", got)
	}
	// Draining faster than the deadline: a slot frees in time, so a
	// short blocking wait loses nothing.
	rc.drainNanos.Store(int64(2 * time.Millisecond))
	if got := rc.adaptivePolicy(timeout, ""); got != BlockWithDeadline {
		t.Fatalf("fast-draining connection resolved to %v, want BlockWithDeadline", got)
	}
	// Boundary: drain time equal to the deadline still admits in time.
	rc.drainNanos.Store(int64(timeout))
	if got := rc.adaptivePolicy(timeout, ""); got != BlockWithDeadline {
		t.Fatalf("boundary drain resolved to %v, want BlockWithDeadline", got)
	}
	// Slower than the deadline: shed the oldest instead of stalling the
	// publisher.
	rc.drainNanos.Store(int64(50 * time.Millisecond))
	if got := rc.adaptivePolicy(timeout, ""); got != DropOldest {
		t.Fatalf("slow-draining connection resolved to %v, want DropOldest", got)
	}
}

// TestAdaptivePerChannelFloor pins the per-channel drain floor: on a
// connection whose EWMA is dominated by a fast channel, frames of a
// channel observed to drain slower than the deadline must still resolve
// to DropOldest — the fast channel cannot mask the slow one.
func TestAdaptivePerChannelFloor(t *testing.T) {
	rc := &remoteConn{}
	const timeout = 10 * time.Millisecond

	// Skewed drain rates: many fast "metrics" frames and a few slow
	// "interactions" frames. The connection-wide EWMA lands well under
	// the deadline.
	for i := 0; i < 32; i++ {
		rc.noteDrain("metrics", int64(time.Millisecond))
	}
	for i := 0; i < 32; i++ {
		rc.noteDrain("interactions", int64(80*time.Millisecond))
	}
	for i := 0; i < 32; i++ {
		rc.noteDrain("metrics", int64(time.Millisecond))
	}
	if d := time.Duration(rc.drainNanos.Load()); d > timeout {
		t.Fatalf("connection EWMA %v above the deadline; the masking scenario never materialized", d)
	}
	if got := rc.adaptivePolicy(timeout, "metrics"); got != BlockWithDeadline {
		t.Fatalf("fast channel resolved to %v, want BlockWithDeadline", got)
	}
	if got := rc.adaptivePolicy(timeout, "interactions"); got != DropOldest {
		t.Fatalf("slow channel resolved to %v, want DropOldest (masked by the fast channel)", got)
	}
	// A channel with no observations falls back to the connection EWMA.
	if got := rc.adaptivePolicy(timeout, "unseen"); got != BlockWithDeadline {
		t.Fatalf("unseen channel resolved to %v, want the connection-wide BlockWithDeadline", got)
	}
}

func TestOverflowPolicyParseRoundTrip(t *testing.T) {
	for _, p := range []OverflowPolicy{DropOldest, BlockWithDeadline, Adaptive} {
		got, err := ParseOverflowPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseOverflowPolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	for in, want := range map[string]OverflowPolicy{
		"drop-oldest":         DropOldest,
		"block-with-deadline": BlockWithDeadline,
		"adaptive":            Adaptive,
	} {
		got, err := ParseOverflowPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseOverflowPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseOverflowPolicy("bogus"); err == nil {
		t.Fatal("ParseOverflowPolicy(bogus) did not error")
	}
}

// TestAdaptiveStalledSubscriberNeverBlocks pins the policy's publisher-
// protection half: a subscriber that has never drained a frame resolves
// to DropOldest, so flooding a full queue must complete without ever
// waiting out a block deadline.
func TestAdaptiveStalledSubscriberNeverBlocks(t *testing.T) {
	reg := newReg(t)
	b := NewBroker(reg,
		WithQueueDepth(4),
		WithOverflowPolicy(Adaptive),
		WithBlockTimeout(200*time.Millisecond),
		WithEvictAfterOverflows(0))
	defer b.Close()
	addr := startBroker(t, b)

	sub := stalledSub(t, addr, "m") // never reads: the queue stays full
	defer sub.Close()
	waitRegistered(t, b, 1)

	const publishes = 64
	start := time.Now()
	for i := 0; i < publishes; i++ {
		if err := b.Publish("m", metric{Name: "n", Value: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// One resolved block would already cost a 200ms deadline; dozens of
	// drop-oldest evictions finish in microseconds.
	if elapsed > 100*time.Millisecond {
		t.Fatalf("%d publishes against a stalled adaptive subscriber took %v (policy blocked)", publishes, elapsed)
	}
	if b.Stats().RemoteDropped == 0 {
		t.Fatal("no drops recorded: the full queue never shed frames")
	}
}
