package core

import (
	"testing"
	"testing/quick"
	"time"

	"sysprof/internal/kprof"
	"sysprof/internal/sim"
	"sysprof/internal/simnet"
	"sysprof/internal/simos"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
	for _, d := range []time.Duration{time.Microsecond, 2 * time.Microsecond, 3 * time.Microsecond} {
		h.Record(d)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 2*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != time.Microsecond || h.Max() != 3*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	h.Record(-time.Second) // clamped
	if h.Min() != 0 {
		t.Fatalf("negative sample not clamped: min=%v", h.Min())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	p99 := h.Quantile(0.99)
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
	// The q-quantile upper bound must be >= the true quantile value.
	if p50 < 500*time.Microsecond/2 {
		t.Fatalf("p50 bound %v implausibly small", p50)
	}
	if h.Quantile(-1) == 0 || h.Quantile(2) < h.Quantile(1)/2 {
		t.Fatal("quantile clamping broken")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	b.Record(time.Microsecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != time.Microsecond || a.Max() != 3*time.Millisecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 3 {
		t.Fatal("merge with empty changed count")
	}
}

// Property: count and sum are conserved, min <= mean <= max.
func TestHistogramInvariantProperty(t *testing.T) {
	prop := func(samples []uint32) bool {
		var h Histogram
		var sum time.Duration
		for _, s := range samples {
			d := time.Duration(s)
			h.Record(d)
			sum += d
		}
		if h.Count() != uint64(len(samples)) || h.Sum() != sum {
			return false
		}
		if h.Count() > 0 && (h.Mean() < h.Min() || h.Mean() > h.Max()) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSyscallLPATracksLatency(t *testing.T) {
	now := new(time.Duration)
	hub := kprof.NewHub(1, func() time.Duration { return *now })
	hub.SetPerEventCost(0)
	a := NewSyscallLPA(hub)
	defer a.Close()

	emit := func(at time.Duration, typ kprof.EventType, pid int32, name string) {
		*now = at
		hub.Emit(&kprof.Event{Type: typ, PID: pid, Proc: name})
	}
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }

	emit(ms(0), kprof.EvSyscallEnter, 1, "read")
	emit(ms(2), kprof.EvSyscallExit, 1, "read")
	emit(ms(3), kprof.EvSyscallEnter, 1, "write")
	emit(ms(4), kprof.EvSyscallEnter, 2, "read") // concurrent on another PID
	emit(ms(9), kprof.EvSyscallExit, 2, "read")
	emit(ms(10), kprof.EvSyscallExit, 1, "write")

	stats := a.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// read: 2ms + 5ms = 7ms total; write: 7ms total. Sorted by total then
	// name: "read" (7ms) and "write" (7ms) tie -> name order.
	if stats[0].Name != "read" || stats[0].Count != 2 || stats[0].Total != ms(7) {
		t.Fatalf("stats[0] = %+v", stats[0])
	}
	if stats[1].Name != "write" || stats[1].Total != ms(7) {
		t.Fatalf("stats[1] = %+v", stats[1])
	}
	if c, total := a.PIDKernelTime(1); c != 2 || total != ms(9) {
		t.Fatalf("pid1 = %d/%v", c, total)
	}
	if c, _ := a.PIDKernelTime(99); c != 0 {
		t.Fatal("unknown pid has stats")
	}
	if a.Histogram("read") == nil || a.Histogram("nope") != nil {
		t.Fatal("Histogram accessor wrong")
	}
	a.Reset()
	if len(a.Stats()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSyscallLPAExitWithoutEnterIgnored(t *testing.T) {
	hub := kprof.NewHub(1, func() time.Duration { return 0 })
	hub.SetPerEventCost(0)
	a := NewSyscallLPA(hub)
	defer a.Close()
	hub.Emit(&kprof.Event{Type: kprof.EvSyscallExit, PID: 5, Proc: "read"})
	if len(a.Stats()) != 0 {
		t.Fatal("mid-call attach produced a sample")
	}
}

func TestSyscallLPAOverSimulatedKernel(t *testing.T) {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	node, err := simos.NewNode(eng, network, "n", simos.Config{
		DiskSeek: 5 * time.Millisecond, DiskBytesPerSec: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := NewSyscallLPA(node.Hub())
	defer a.Close()

	node.Spawn("app", func(p *simos.Process) {
		p.DiskWrite(4096, func() {
			p.Syscall("getpid", time.Microsecond, func() {})
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	stats := a.Stats()
	if len(stats) < 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// The write syscall blocks on the disk: its latency must include the
	// ~5ms disk time, dwarfing getpid.
	if stats[0].Name != "write" {
		t.Fatalf("dominant syscall = %q, want write", stats[0].Name)
	}
	if stats[0].Mean < 5*time.Millisecond {
		t.Fatalf("write latency %v, want >= disk seek", stats[0].Mean)
	}
}
