package core_test

import (
	"fmt"
	"time"

	"sysprof/internal/core"
	"sysprof/internal/kprof"
	"sysprof/internal/simnet"
)

// Attach an interaction LPA to a hub and feed it a request/response pair;
// the analyzer produces one interaction record with the resource split.
func ExampleNewLPA() {
	var now time.Duration
	hub := kprof.NewHub(2, func() time.Duration { return now })
	hub.SetPerEventCost(0)
	lpa := core.NewLPA(hub, core.Config{})
	defer lpa.Close()

	flow := simnet.FlowKey{
		Src: simnet.Addr{Node: 1, Port: 4000},
		Dst: simnet.Addr{Node: 2, Port: 80},
	}
	emit := func(at time.Duration, ev kprof.Event) {
		now = at
		hub.Emit(&ev)
	}
	// Request packet in, server reads it after 2 ms in the buffer,
	// response goes out.
	emit(0, kprof.Event{Type: kprof.EvNetRx, Flow: flow, Bytes: 500})
	emit(1*time.Millisecond, kprof.Event{Type: kprof.EvNetDeliver, Flow: flow, Bytes: 448})
	emit(3*time.Millisecond, kprof.Event{Type: kprof.EvNetUserRead, Flow: flow, PID: 9,
		Proc: "httpd", Aux: int64(2 * time.Millisecond)})
	emit(7*time.Millisecond, kprof.Event{Type: kprof.EvNetSend, Flow: flow.Reverse(), PID: 9})
	emit(8*time.Millisecond, kprof.Event{Type: kprof.EvNetTx, Flow: flow.Reverse(), Bytes: 900, Last: true})
	lpa.FlushOpen()

	for _, r := range lpa.Window().Snapshot() {
		fmt.Printf("%s server=%s user=%v bufwait=%v total=%v\n",
			r.Flow, r.ServerProc, r.UserTime, r.BufferWait, r.Residence())
	}
	// Output:
	// n1:4000->n2:80 server=httpd user=4ms bufwait=2ms total=8ms
}

// Watch completed interactions against an SLA with windowed tolerance.
func ExampleNewSLAWatcher() {
	watcher := core.NewSLAWatcher([]core.SLA{
		{Class: "port:80", MaxResidence: 10 * time.Millisecond, Window: 4, MaxViolations: 1},
	}, func(sla core.SLA, r *core.Record) {
		fmt.Printf("breach: %v > %v\n", r.Residence(), sla.MaxResidence)
	})
	mk := func(res time.Duration) *core.Record {
		return &core.Record{Class: "port:80", End: res}
	}
	watcher.OnComplete(mk(50 * time.Millisecond)) // first miss: tolerated
	watcher.OnComplete(mk(2 * time.Millisecond))
	watcher.OnComplete(mk(60 * time.Millisecond)) // second miss in window: breach
	// Output:
	// breach: 60ms > 10ms
}

// Decompose a record into the paper's Figure-1 steps.
func ExampleRecord_Breakdown() {
	r := core.Record{
		ProtoTime:  100 * time.Microsecond,
		BufferWait: 800 * time.Microsecond,
		UserTime:   300 * time.Microsecond,
	}
	for _, s := range r.Breakdown()[:3] {
		fmt.Printf("%s %s: %v\n", s.Label, s.Desc, s.Latency)
	}
	// Output:
	// L1 inbound protocol processing: 100µs
	// L2 kernel buffer wait: 800µs
	// L3 user-level processing: 300µs
}
