package core

import (
	"time"
)

// ClientClassifier groups interactions by the requesting client node —
// the paper's third monitoring granularity, "characterizing the server
// resources consumed by sets of clients or client behaviors". Combine
// with Granularity PerClass for per-client aggregate accounting.
func ClientClassifier() Classifier {
	return func(r *Record) string {
		return "client:" + itoa(int(r.Flow.Src.Node))
	}
}

// SLA is a per-class service-level objective over interaction records.
type SLA struct {
	// Class the objective applies to ("" = every class).
	Class string
	// MaxResidence is the per-interaction latency bound.
	MaxResidence time.Duration
	// Window and MaxViolations tolerate sporadic misses: the SLA is
	// breached when more than MaxViolations of the last Window
	// interactions exceeded the bound (mirroring DWCS's x/y windows).
	Window        int
	MaxViolations int
}

// SLAWatcher evaluates completed interactions against service-level
// objectives and invokes a callback on breach — the paper's "enforcing
// service level agreements" use of monitoring data, usable directly as an
// LPA OnComplete hook.
type SLAWatcher struct {
	slas     []SLA
	onBreach func(sla SLA, r *Record)
	// recent[i] is a sliding bitset-ish window of recent outcomes per SLA
	// (true = violated).
	recent [][]bool

	checked  uint64
	breaches uint64
}

// NewSLAWatcher builds a watcher; onBreach fires once per breaching
// record (after tolerance is exhausted).
func NewSLAWatcher(slas []SLA, onBreach func(sla SLA, r *Record)) *SLAWatcher {
	w := &SLAWatcher{slas: slas, onBreach: onBreach, recent: make([][]bool, len(slas))}
	for i := range slas {
		if slas[i].Window < 1 {
			w.slas[i].Window = 1
		}
	}
	return w
}

// OnComplete feeds one record; wire it into core.Config.OnComplete.
func (w *SLAWatcher) OnComplete(r *Record) {
	w.checked++
	for i := range w.slas {
		sla := &w.slas[i]
		if sla.Class != "" && sla.Class != r.Class {
			continue
		}
		violated := r.Residence() > sla.MaxResidence
		w.recent[i] = append(w.recent[i], violated)
		if len(w.recent[i]) > sla.Window {
			w.recent[i] = w.recent[i][len(w.recent[i])-sla.Window:]
		}
		if !violated {
			continue
		}
		n := 0
		for _, v := range w.recent[i] {
			if v {
				n++
			}
		}
		if n > sla.MaxViolations {
			w.breaches++
			if w.onBreach != nil {
				w.onBreach(*sla, r)
			}
		}
	}
}

// Stats reports records checked and breaches raised.
func (w *SLAWatcher) Stats() (checked, breaches uint64) { return w.checked, w.breaches }
