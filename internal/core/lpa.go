package core

import (
	"time"

	"sysprof/internal/kprof"
	"sysprof/internal/simnet"
)

// Granularity selects what the LPA retains, a runtime knob of the SysProf
// controller ("It can instruct the LPAs to collect statistics for some
// client class rather than for individual interactions").
type Granularity uint8

const (
	// PerInteraction keeps every interaction record (fine grain).
	PerInteraction Granularity = iota + 1
	// PerClass folds records into per-class aggregates only.
	PerClass
)

// Classifier assigns a request class to a completed interaction. The
// default classifies by server port.
type Classifier func(r *Record) string

// Config configures an LPA.
type Config struct {
	// WindowSize is the sliding window of recent interactions.
	WindowSize int
	// BufferCapacity is each per-CPU double buffer's record capacity.
	BufferCapacity int
	// NumCPUs sets how many per-CPU buffers exist.
	NumCPUs int
	// Granularity selects per-interaction records or per-class aggregates.
	Granularity Granularity
	// Classify assigns request classes; nil uses the port classifier.
	Classify Classifier
	// OnFull receives filled buffer batches (the dissemination daemon).
	// Batches are columnar; use RecordColumns.Row/AppendTo to materialize
	// rows when needed.
	OnFull func(cpu int, batch *RecordColumns, release func())
	// OnComplete, when set, observes every completed record synchronously
	// (used by resource-aware schedulers needing the freshest data).
	OnComplete func(*Record)
	// Hashed selects the hashed flow table (default true); false uses the
	// linear-scan ablation table.
	Linear bool
}

// LPAStats counts analyzer activity.
type LPAStats struct {
	Events       uint64
	Interactions uint64
	OpenFlows    int
	// DroppedEpisodes counts handling episodes replaced before their send
	// (interleaved reads the black-box analyzer cannot attribute).
	DroppedEpisodes uint64
}

// episode tracks one process's handling burst: from reading a request to
// its next send. Its user/kernel/blocked split is attributed to the
// interaction whose message was read.
type episode struct {
	target  *open
	readAt  time.Duration
	sysAt   time.Duration
	inSys   bool
	sysAcc  time.Duration
	blkAt   time.Duration
	inBlk   bool
	blkAcc  time.Duration
	ctxSw   uint64
	diskOps uint64
}

// LPA is the interaction-tracking Local Performance Analyzer. It
// subscribes to kprof events and runs entirely on the event fast path; its
// handler never blocks.
type LPA struct {
	hub  *kprof.Hub
	node simnet.NodeID
	cfg  Config

	sub      *kprof.Subscription
	table    FlowTable
	window   *Window
	buffers  *BufferSet
	episodes map[int32]*episode
	aggs     map[string]*Aggregate

	nextID uint64
	stats  LPAStats
}

// MaskDefault is the event set the interaction LPA needs.
func MaskDefault() kprof.Mask {
	return kprof.MaskNetwork() | kprof.MaskSyscall() |
		kprof.MaskOf(kprof.EvBlock, kprof.EvWake, kprof.EvCtxSwitch, kprof.EvDiskIssue)
}

// PortClassifier returns a classifier that names classes after the server
// port ("port:N").
func PortClassifier() Classifier {
	return func(r *Record) string {
		return "port:" + itoa(int(r.Flow.Dst.Port))
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 && i > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// NewLPA creates an analyzer and registers it with the hub.
func NewLPA(hub *kprof.Hub, cfg Config) *LPA {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 256
	}
	if cfg.BufferCapacity <= 0 {
		cfg.BufferCapacity = 512
	}
	if cfg.NumCPUs <= 0 {
		cfg.NumCPUs = 1
	}
	if cfg.Granularity == 0 {
		cfg.Granularity = PerInteraction
	}
	if cfg.Classify == nil {
		cfg.Classify = PortClassifier()
	}
	a := &LPA{
		hub:      hub,
		node:     hub.Node(),
		cfg:      cfg,
		episodes: make(map[int32]*episode),
		aggs:     make(map[string]*Aggregate),
	}
	if cfg.Linear {
		a.table = NewLinearTable()
	} else {
		a.table = NewHashedTable(8)
	}
	a.buffers = NewBufferSet(cfg.NumCPUs, cfg.BufferCapacity, cfg.OnFull)
	a.window = NewWindow(cfg.WindowSize, func(rec Record) {
		a.buffers.Push(int(rec.CPU), rec)
	})
	a.sub = hub.Subscribe(MaskDefault(), a.handle)
	return a
}

// Close detaches the analyzer from the hub and flushes all state.
func (a *LPA) Close() {
	a.sub.Close()
	a.FlushOpen()
	a.window.EvictAll()
	a.buffers.FlushAll()
}

// Subscription exposes the kprof subscription so the controller can
// retune the event mask or add filters.
func (a *LPA) Subscription() *kprof.Subscription { return a.sub }

// Window returns the sliding window of recent interactions.
func (a *LPA) Window() *Window { return a.window }

// Buffers returns the per-CPU dissemination buffers.
func (a *LPA) Buffers() *BufferSet { return a.buffers }

// Stats returns analyzer counters.
func (a *LPA) Stats() LPAStats {
	st := a.stats
	st.OpenFlows = a.table.Len()
	return st
}

// SetGranularity switches between per-interaction and per-class retention
// at runtime.
func (a *LPA) SetGranularity(g Granularity) {
	if g == PerInteraction || g == PerClass {
		a.cfg.Granularity = g
	}
}

// Granularity returns the current retention mode.
func (a *LPA) Granularity() Granularity { return a.cfg.Granularity }

// Aggregates returns a copy of the per-class aggregates.
func (a *LPA) Aggregates() map[string]Aggregate {
	out := make(map[string]Aggregate, len(a.aggs))
	for k, v := range a.aggs {
		out[k] = *v
	}
	return out
}

// ResetAggregates clears per-class statistics (e.g. per measurement epoch).
func (a *LPA) ResetAggregates() { a.aggs = make(map[string]*Aggregate) }

// FlushOpen force-closes all in-progress interactions (end of run).
func (a *LPA) FlushOpen() {
	a.table.Each(func(fs *flowState) {
		if fs.cur != nil && fs.cur.phase == phaseResponse {
			a.closeInteraction(fs)
		}
	})
}

// ExpireIdleFlows deletes flow-table entries with no in-progress
// interaction and no wire or send activity at or after cutoff, returning
// how many were removed. The dissemination daemon calls this on its flush
// cadence so conversations that ended long ago stop occupying the table
// (the expired state is per-flow bookkeeping only — completed records
// already left through the window and buffers). Victims are collected
// first and deleted after the scan, since the table forbids deleting
// mid-Each.
func (a *LPA) ExpireIdleFlows(cutoff time.Duration) int {
	var victims []simnet.FlowKey
	limit := int64(cutoff)
	a.table.Each(func(fs *flowState) {
		if fs.cur != nil {
			return
		}
		last := fs.lastRxAt
		if fs.lastTxAt > last {
			last = fs.lastTxAt
		}
		if fs.lastSendAt > last {
			last = fs.lastSendAt
		}
		if last < limit {
			victims = append(victims, fs.key)
		}
	})
	for _, key := range victims {
		a.table.Delete(key)
	}
	return len(victims)
}

// handle is the kprof callback: the analyzer fast path.
//
//sysprof:nonblocking
func (a *LPA) handle(ev *kprof.Event) {
	a.stats.Events++
	switch ev.Type {
	case kprof.EvNetRx:
		a.onWirePacket(ev, true)
	case kprof.EvNetTx:
		a.onWirePacket(ev, false)
	case kprof.EvNetDeliver:
		a.onDeliver(ev)
	case kprof.EvNetUserRead:
		a.onUserRead(ev)
	case kprof.EvNetSend:
		a.onSend(ev)
	case kprof.EvSyscallEnter:
		if ep := a.episodes[ev.PID]; ep != nil {
			ep.inSys = true
			ep.sysAt = ev.Time
		}
	case kprof.EvSyscallExit:
		if ep := a.episodes[ev.PID]; ep != nil && ep.inSys {
			ep.sysAcc += ev.Time - ep.sysAt
			ep.inSys = false
		}
	case kprof.EvBlock:
		if ep := a.episodes[ev.PID]; ep != nil {
			// Blocking inside a syscall (e.g. a synchronous disk write):
			// pause syscall-time accumulation so the blocked span is not
			// counted twice.
			if ep.inSys {
				ep.sysAcc += ev.Time - ep.sysAt
			}
			ep.inBlk = true
			ep.blkAt = ev.Time
		}
	case kprof.EvWake:
		if ep := a.episodes[ev.PID]; ep != nil && ep.inBlk {
			ep.blkAcc += ev.Time - ep.blkAt
			ep.inBlk = false
			if ep.inSys {
				ep.sysAt = ev.Time // resume syscall accumulation
			}
		}
	case kprof.EvCtxSwitch:
		if ep := a.episodes[ev.PID2]; ep != nil {
			ep.ctxSw++
		}
	case kprof.EvDiskIssue:
		if ep := a.episodes[ev.PID]; ep != nil {
			ep.diskOps++
		}
	}
}

// inbound reports whether the event's packet travels toward this node.
func (a *LPA) inbound(flow simnet.FlowKey) bool { return flow.Dst.Node == a.node }

// onWirePacket processes net_rx (inbound) and net_tx (outbound) events:
// the message/interaction state machine on packet direction runs.
func (a *LPA) onWirePacket(ev *kprof.Event, rx bool) {
	fs := a.table.Get(ev.Flow)
	if fs.reqDir == (simnet.FlowKey{}) {
		fs.reqDir = ev.Flow
	}
	isReq := ev.Flow == fs.reqDir
	if rx {
		fs.lastRxAt = int64(ev.Time)
	} else {
		fs.lastTxAt = int64(ev.Time)
	}

	if isReq {
		// A request-direction packet after a response closes the previous
		// interaction and opens the next.
		if fs.cur != nil && fs.cur.phase == phaseResponse {
			a.closeInteraction(fs)
		}
		if fs.cur == nil {
			a.nextID++
			fs.cur = &open{
				rec: Record{
					ID:    a.nextID,
					Node:  a.node,
					Flow:  fs.reqDir,
					Start: ev.Time,
				},
				phase:    phaseRequest,
				lastTxAt: -1,
			}
		}
		fs.cur.rec.ReqPackets++
		fs.cur.rec.ReqBytes += int(ev.Bytes)
		return
	}

	// Response-direction packet.
	if fs.cur == nil {
		// A response with no observed request (e.g. monitoring attached
		// mid-conversation): ignore until the next request run.
		return
	}
	fs.cur.phase = phaseResponse
	fs.cur.rec.RespPackets++
	fs.cur.rec.RespBytes += int(ev.Bytes)
	fs.cur.rec.CPU = ev.CPU
	fs.cur.lastTxAt = int64(ev.Time)
}

func (a *LPA) onDeliver(ev *kprof.Event) {
	fs := a.table.Get(ev.Flow)
	if fs.cur == nil {
		return
	}
	// Inbound protocol processing: time since the flow's last NIC arrival.
	if fs.lastRxAt >= 0 && int64(ev.Time) >= fs.lastRxAt {
		fs.cur.rec.ProtoTime += ev.Time - time.Duration(fs.lastRxAt)
	}
}

func (a *LPA) onUserRead(ev *kprof.Event) {
	fs := a.table.Get(ev.Flow)
	if fs.cur == nil {
		return
	}
	fs.cur.rec.BufferWait += time.Duration(ev.Aux)
	if ev.Flow == fs.reqDir {
		// The reader is this interaction's server.
		fs.cur.handling = true
		fs.cur.handlePID = ev.PID
		fs.cur.rec.ServerPID = ev.PID
		fs.cur.rec.ServerProc = ev.Proc
	}
	// Open a handling episode for the reading process, targeting this
	// interaction. A still-open episode means interleaved reads the
	// black-box analyzer cannot attribute; it is finalized as of now.
	if old := a.episodes[ev.PID]; old != nil {
		a.stats.DroppedEpisodes++
		a.finalizeEpisode(ev.PID, old, ev.Time)
	}
	a.episodes[ev.PID] = &episode{target: fs.cur, readAt: ev.Time}
}

func (a *LPA) onSend(ev *kprof.Event) {
	fs := a.table.Get(ev.Flow)
	fs.lastSendAt = int64(ev.Time)
	// The send marks the end of the sender's handling episode. Outbound
	// protocol (TxTime) is derived at close from lastSendAt/lastTxAt.
	if ep := a.episodes[ev.PID]; ep != nil {
		a.finalizeEpisode(ev.PID, ep, ev.Time)
	}
}

// finalizeEpisode attributes an episode's split to its interaction.
func (a *LPA) finalizeEpisode(pid int32, ep *episode, now time.Duration) {
	delete(a.episodes, pid)
	if ep.inSys {
		ep.sysAcc += now - ep.sysAt
	}
	if ep.inBlk {
		ep.blkAcc += now - ep.blkAt
	}
	elapsed := now - ep.readAt
	user := elapsed - ep.sysAcc - ep.blkAcc
	if user < 0 {
		user = 0
	}
	rec := &ep.target.rec
	rec.UserTime += user
	rec.SyscallTime += ep.sysAcc
	rec.BlockedTime += ep.blkAcc
	rec.CtxSwitches += ep.ctxSw
	rec.DiskOps += ep.diskOps
}

// closeInteraction completes fs.cur and emits its record.
func (a *LPA) closeInteraction(fs *flowState) {
	o := fs.cur
	fs.cur = nil
	if o.lastTxAt >= 0 {
		o.rec.End = time.Duration(o.lastTxAt)
	} else {
		o.rec.End = o.rec.Start
	}
	// Outbound protocol time: approximate as response packets' share of
	// send-to-wire lag; derived from the last send and last wire event.
	if fs.lastSendAt >= 0 && o.lastTxAt > fs.lastSendAt {
		o.rec.TxTime += time.Duration(o.lastTxAt - fs.lastSendAt)
	}
	o.rec.Class = a.cfg.Classify(&o.rec)
	a.stats.Interactions++

	if a.cfg.OnComplete != nil {
		a.cfg.OnComplete(&o.rec)
	}
	switch a.cfg.Granularity {
	case PerClass:
		agg := a.aggs[o.rec.Class]
		if agg == nil {
			agg = &Aggregate{Class: o.rec.Class}
			a.aggs[o.rec.Class] = agg
		}
		agg.Add(&o.rec)
	default:
		a.window.Add(o.rec)
	}
}
