package core

import (
	"fmt"

	"sysprof/internal/ecode"
	"sysprof/internal/kprof"
)

// CPA is a Custom Performance Analyzer: an E-Code program installed at
// runtime that runs on the kernel event fast path, exactly like a built-in
// LPA ("custom analyzers can be dynamically created and downloaded into
// the kernel ... specified in the form of E-Code, compiled through
// run-time code generation").
//
// The program sees each event as a record named "ev" and may call
// emit(channel, value) to publish derived data (routed to the
// dissemination daemon's pub-sub channels by the host).
//
// Installation is gated by the E-Code verifier: NewCPA re-verifies the
// source regardless of what any frontend already checked, then compiles
// the proven-safe program to specialized closures. The kernel fast path
// therefore never runs an unbounded, blocking, or allocating analyzer —
// and never pays for a step counter, because termination is proven.
type CPA struct {
	name string
	sub  *kprof.Subscription
	inst *ecode.CompiledInstance
	cost int

	runs    uint64
	errs    uint64
	lastErr error
}

// eventRecord adapts a kprof event to the ecode.Record interface. Field
// names are the stable CPA-visible schema.
type eventRecord struct {
	ev *kprof.Event
}

var _ ecode.Record = eventRecord{}

// Field implements ecode.Record.
func (r eventRecord) Field(name string) (ecode.Value, bool) {
	ev := r.ev
	switch name {
	case "type":
		return ev.Type.String(), true
	case "time":
		return int64(ev.Time), true
	case "node":
		return int64(ev.Node), true
	case "cpu":
		return int64(ev.CPU), true
	case "pid":
		return int64(ev.PID), true
	case "pid2":
		return int64(ev.PID2), true
	case "bytes":
		return int64(ev.Bytes), true
	case "aux":
		return ev.Aux, true
	case "msgid":
		return int64(ev.MsgID), true
	case "seq":
		return int64(ev.Seq), true
	case "last":
		return ev.Last, true
	case "proc":
		return ev.Proc, true
	case "src_node":
		return int64(ev.Flow.Src.Node), true
	case "src_port":
		return int64(ev.Flow.Src.Port), true
	case "dst_node":
		return int64(ev.Flow.Dst.Node), true
	case "dst_port":
		return int64(ev.Flow.Dst.Port), true
	}
	return nil, false
}

// EventSchema is the CPA-visible kernel event schema: the typed fields
// of the "ev" record, kept in lockstep with eventRecord.Field.
func EventSchema() ecode.RecordSchema {
	return ecode.RecordSchema{
		"type":  ecode.TString,
		"time":  ecode.TInt,
		"node":  ecode.TInt,
		"cpu":   ecode.TInt,
		"pid":   ecode.TInt,
		"pid2":  ecode.TInt,
		"bytes": ecode.TInt,
		"aux":   ecode.TInt,
		"msgid": ecode.TInt,
		"seq":   ecode.TInt,
		"last":  ecode.TBool,
		"proc":  ecode.TString,

		"src_node": ecode.TInt,
		"src_port": ecode.TInt,
		"dst_node": ecode.TInt,
		"dst_port": ecode.TInt,
	}
}

// CPAVerifyEnv is the canonical verification environment for custom
// analyzers: the event schema plus the emit builtin. Frontends
// (sysprofctl) and the LPA host both verify against this same
// environment, so a program accepted client-side cannot be rejected
// node-side for schema drift.
func CPAVerifyEnv(name string) ecode.VerifyEnv {
	return ecode.VerifyEnv{
		Name:    name,
		Records: map[string]ecode.RecordSchema{"ev": EventSchema()},
		Builtins: map[string]ecode.BuiltinSig{
			"emit": {Params: []ecode.ParamKind{ecode.PString, ecode.PAny}, Result: ecode.RInt, Cost: 4},
		},
	}
}

// EmitFunc receives values published by a CPA's emit(channel, value).
type EmitFunc func(channel string, value ecode.Value)

// NewCPA verifies src, compiles it to closures, and installs it on the
// hub for the given event mask. Verification happens here — node-side —
// even when a frontend already verified: the LPA never trusts the
// install path. Rejections carry the verifier's evidence chains.
func NewCPA(hub *kprof.Hub, name, src string, mask kprof.Mask, emit EmitFunc) (*CPA, error) {
	prog, err := ecode.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("cpa %q: %w", name, err)
	}
	compiled, verdict, err := prog.CompileVerified(CPAVerifyEnv(name))
	if err != nil {
		if verdict != nil && !verdict.OK {
			return nil, fmt.Errorf("cpa %q rejected by verifier:\n%s", name, verdict.Render())
		}
		return nil, fmt.Errorf("cpa %q: %w", name, err)
	}
	c := &CPA{name: name, cost: compiled.Cost()}
	builtins := map[string]ecode.Builtin{
		"emit": func(args []ecode.Value) (ecode.Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("emit wants (channel, value)")
			}
			ch, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("emit channel must be a string")
			}
			if emit != nil {
				emit(ch, args[1])
			}
			return int64(0), nil
		},
	}
	c.inst, err = compiled.NewInstance(builtins)
	if err != nil {
		return nil, fmt.Errorf("cpa %q: %w", name, err)
	}
	c.sub = hub.Subscribe(mask, c.handle)
	return c, nil
}

// VerifyCPA runs the verifier alone (no install): the check frontends
// use before shipping source across the control channel.
func VerifyCPA(name, src string) (*ecode.Verdict, error) {
	prog, err := ecode.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("cpa %q: %w", name, err)
	}
	return prog.Verify(CPAVerifyEnv(name)), nil
}

// Name returns the analyzer's name.
func (c *CPA) Name() string { return c.name }

// Cost returns the verifier's worst-case per-event step estimate.
func (c *CPA) Cost() int { return c.cost }

// Subscription exposes the kprof subscription for controller retuning.
func (c *CPA) Subscription() *kprof.Subscription { return c.sub }

// Close uninstalls the analyzer.
func (c *CPA) Close() { c.sub.Close() }

// Stats reports run and error counts, plus the most recent error.
func (c *CPA) Stats() (runs, errs uint64, lastErr error) {
	return c.runs, c.errs, c.lastErr
}

// Static exposes a persistent program variable (for queries via /proc).
func (c *CPA) Static(name string) (ecode.Value, bool) { return c.inst.Static(name) }

func (c *CPA) handle(ev *kprof.Event) {
	c.runs++
	if _, err := c.inst.Run(map[string]ecode.Value{"ev": eventRecord{ev: ev}}); err != nil {
		c.errs++
		c.lastErr = err
	}
}
