package core

import (
	"fmt"

	"sysprof/internal/ecode"
	"sysprof/internal/kprof"
)

// CPA is a Custom Performance Analyzer: an E-Code program installed at
// runtime that runs on the kernel event fast path, exactly like a built-in
// LPA ("custom analyzers can be dynamically created and downloaded into
// the kernel ... specified in the form of E-Code, compiled through
// run-time code generation").
//
// The program sees each event as a record named "ev" and may call
// emit(channel, value) to publish derived data (routed to the
// dissemination daemon's pub-sub channels by the host).
type CPA struct {
	name string
	sub  *kprof.Subscription
	inst *ecode.Instance

	runs    uint64
	errs    uint64
	lastErr error
}

// eventRecord adapts a kprof event to the ecode.Record interface. Field
// names are the stable CPA-visible schema.
type eventRecord struct {
	ev *kprof.Event
}

var _ ecode.Record = eventRecord{}

// Field implements ecode.Record.
func (r eventRecord) Field(name string) (ecode.Value, bool) {
	ev := r.ev
	switch name {
	case "type":
		return ev.Type.String(), true
	case "time":
		return int64(ev.Time), true
	case "node":
		return int64(ev.Node), true
	case "cpu":
		return int64(ev.CPU), true
	case "pid":
		return int64(ev.PID), true
	case "pid2":
		return int64(ev.PID2), true
	case "bytes":
		return int64(ev.Bytes), true
	case "aux":
		return ev.Aux, true
	case "msgid":
		return int64(ev.MsgID), true
	case "seq":
		return int64(ev.Seq), true
	case "last":
		return ev.Last, true
	case "proc":
		return ev.Proc, true
	case "src_node":
		return int64(ev.Flow.Src.Node), true
	case "src_port":
		return int64(ev.Flow.Src.Port), true
	case "dst_node":
		return int64(ev.Flow.Dst.Node), true
	case "dst_port":
		return int64(ev.Flow.Dst.Port), true
	}
	return nil, false
}

// EmitFunc receives values published by a CPA's emit(channel, value).
type EmitFunc func(channel string, value ecode.Value)

// NewCPA compiles src and installs it on the hub for the given event mask.
func NewCPA(hub *kprof.Hub, name, src string, mask kprof.Mask, emit EmitFunc) (*CPA, error) {
	prog, err := ecode.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("cpa %q: %w", name, err)
	}
	c := &CPA{name: name}
	builtins := map[string]ecode.Builtin{
		"emit": func(args []ecode.Value) (ecode.Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("emit wants (channel, value)")
			}
			ch, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("emit channel must be a string")
			}
			if emit != nil {
				emit(ch, args[1])
			}
			return int64(0), nil
		},
	}
	c.inst = prog.NewInstance(ecode.WithBuiltins(builtins), ecode.WithStepLimit(100_000))
	c.sub = hub.Subscribe(mask, c.handle)
	return c, nil
}

// Name returns the analyzer's name.
func (c *CPA) Name() string { return c.name }

// Subscription exposes the kprof subscription for controller retuning.
func (c *CPA) Subscription() *kprof.Subscription { return c.sub }

// Close uninstalls the analyzer.
func (c *CPA) Close() { c.sub.Close() }

// Stats reports run and error counts, plus the most recent error.
func (c *CPA) Stats() (runs, errs uint64, lastErr error) {
	return c.runs, c.errs, c.lastErr
}

// Static exposes a persistent program variable (for queries via /proc).
func (c *CPA) Static(name string) (ecode.Value, bool) { return c.inst.Static(name) }

func (c *CPA) handle(ev *kprof.Event) {
	c.runs++
	if _, err := c.inst.Run(map[string]ecode.Value{"ev": eventRecord{ev: ev}}); err != nil {
		c.errs++
		c.lastErr = err
	}
}
