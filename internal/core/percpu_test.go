package core

import (
	"testing"
	"time"

	"sysprof/internal/sim"
	"sysprof/internal/simnet"
	"sysprof/internal/simos"
)

// TestPerCPUBufferRouting verifies the per-CPU buffer design end to end:
// on a 2-CPU node with servers pinned to different CPUs, completed
// interaction records land in the buffer of the CPU that captured them.
func TestPerCPUBufferRouting(t *testing.T) {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	server, err := simos.NewNode(eng, network, "server", simos.Config{NumCPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	client, err := simos.NewNode(eng, network, "client", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Connect(server.ID(), client.ID()); err != nil {
		t.Fatal(err)
	}

	perCPU := map[int]int{}
	lpa := NewLPA(server.Hub(), Config{
		NumCPUs:        2,
		WindowSize:     1, // evict almost immediately so buffers fill
		BufferCapacity: 1,
		OnFull: func(cpu int, batch *RecordColumns, release func()) {
			perCPU[cpu] += batch.Len()
			release()
		},
	})
	defer lpa.Close()

	// Two single-threaded servers on different ports; PIDs 1 and 2 pin to
	// CPUs 1 and 0 respectively.
	for _, port := range []uint16{80, 81} {
		sock := server.MustBind(port)
		server.Spawn("srv", func(p *simos.Process) {
			var loop func()
			loop = func() {
				p.Recv(sock, func(m *simos.Message) {
					p.Compute(200*time.Microsecond, func() {
						p.Reply(sock, m, 500, nil, loop)
					})
				})
			}
			loop()
		})
	}
	for i, port := range []uint16{80, 81} {
		csock := client.MustBind(uint16(9000 + i))
		dst := simnet.Addr{Node: server.ID(), Port: port}
		client.Spawn("cli", func(p *simos.Process) {
			var loop func(n int)
			loop = func(n int) {
				if n == 0 {
					return
				}
				p.Send(csock, dst, 100, nil, func() {
					p.Recv(csock, func(m *simos.Message) { loop(n - 1) })
				})
			}
			loop(6)
		})
	}
	if err := eng.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	lpa.FlushOpen()
	lpa.Buffers().FlushAll()

	if perCPU[0] == 0 || perCPU[1] == 0 {
		t.Fatalf("records not spread across CPU buffers: %v", perCPU)
	}
	total := perCPU[0] + perCPU[1]
	if total < 10 {
		t.Fatalf("total records = %d, want ~12", total)
	}
}
