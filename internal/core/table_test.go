package core

import (
	"testing"

	"sysprof/internal/simnet"
)

func flowKey(i int) simnet.FlowKey {
	return simnet.FlowKey{
		Src: simnet.Addr{Node: simnet.NodeID(i % 7), Port: uint16(i)},
		Dst: simnet.Addr{Node: simnet.NodeID(100 + i%5), Port: uint16(40000 + i)},
	}
}

func TestHashedTableRehashGrowsSlots(t *testing.T) {
	tbl := NewHashedTable(2) // 4 slots
	ht := tbl.(*hashedTable)
	initial := len(ht.slots)
	if initial != 4 {
		t.Fatalf("initial slots = %d, want 4", initial)
	}

	const flows = 200
	states := make(map[simnet.FlowKey]*flowState, flows)
	for i := 0; i < flows; i++ {
		k := flowKey(i)
		states[k.Canonical()] = tbl.Get(k)
	}
	if tbl.Len() != flows {
		t.Fatalf("Len = %d, want %d", tbl.Len(), flows)
	}
	if len(ht.slots) <= initial {
		t.Fatalf("slots = %d after %d inserts, expected growth past %d",
			len(ht.slots), flows, initial)
	}
	if flows*100 > len(ht.slots)*maxLoadPercent {
		t.Fatalf("load above %d%%: %d slots for %d flows",
			maxLoadPercent, len(ht.slots), flows)
	}

	// Every flow must resolve to the same *flowState after rehashing,
	// from either direction of the conversation.
	for i := 0; i < flows; i++ {
		k := flowKey(i)
		want := states[k.Canonical()]
		if got := tbl.Get(k); got != want {
			t.Fatalf("flow %d lost its state after rehash", i)
		}
		if got := tbl.Get(k.Reverse()); got != want {
			t.Fatalf("flow %d (reversed) resolved to a different state", i)
		}
	}

	// Each visits every state exactly once.
	seen := 0
	tbl.Each(func(*flowState) { seen++ })
	if seen != flows {
		t.Fatalf("Each visited %d states, want %d", seen, flows)
	}
}

func TestHashedTableDelete(t *testing.T) {
	tbl := NewHashedTable(4)
	const flows = 500
	for i := 0; i < flows; i++ {
		tbl.Get(flowKey(i))
	}
	// Delete every third flow, by either direction of the key.
	deleted := map[simnet.FlowKey]bool{}
	for i := 0; i < flows; i += 3 {
		k := flowKey(i)
		if i%2 == 0 {
			k = k.Reverse()
		}
		if !tbl.Delete(k) {
			t.Fatalf("Delete(flow %d) = false, want true", i)
		}
		deleted[flowKey(i).Canonical()] = true
	}
	if tbl.Delete(flowKey(flows + 7)) {
		t.Fatal("Delete of absent key returned true")
	}
	want := flows - len(deleted)
	if tbl.Len() != want {
		t.Fatalf("Len = %d after deletes, want %d", tbl.Len(), want)
	}
	// Backward-shift deletion must not break probing for survivors: every
	// remaining flow is still findable, and Each sees exactly the
	// survivors.
	ht := tbl.(*hashedTable)
	for i := 0; i < flows; i++ {
		k := flowKey(i).Canonical()
		if deleted[k] {
			continue
		}
		before := ht.n
		fs := tbl.Get(k)
		if ht.n != before {
			t.Fatalf("flow %d was re-inserted by Get after deletes: probe chain broken", i)
		}
		if fs.key != k {
			t.Fatalf("flow %d resolved to wrong state", i)
		}
	}
	seen := 0
	tbl.Each(func(*flowState) { seen++ })
	if seen != want {
		t.Fatalf("Each visited %d states after deletes, want %d", seen, want)
	}
}

// Deleting colliding keys exercises the cyclic home-distance check in the
// backward shift: with a tiny table, many keys share probe sequences that
// wrap around the end of the slot array.
func TestHashedTableDeleteCollisions(t *testing.T) {
	tbl := NewHashedTable(2)
	const flows = 30
	for i := 0; i < flows; i++ {
		tbl.Get(flowKey(i))
	}
	// Delete in an order unrelated to insertion, verifying survivors after
	// every single deletion.
	order := []int{17, 2, 29, 0, 11, 23, 5, 8, 26, 14, 20, 1, 28, 3, 9}
	gone := map[simnet.FlowKey]bool{}
	for _, i := range order {
		if !tbl.Delete(flowKey(i)) {
			t.Fatalf("Delete(flow %d) failed", i)
		}
		gone[flowKey(i).Canonical()] = true
		ht := tbl.(*hashedTable)
		for j := 0; j < flows; j++ {
			k := flowKey(j).Canonical()
			if gone[k] {
				continue
			}
			before := ht.n
			tbl.Get(k)
			if ht.n != before {
				t.Fatalf("after deleting flow %d, flow %d became unreachable", i, j)
			}
		}
	}
}

func TestLinearTableDelete(t *testing.T) {
	tbl := NewLinearTable()
	for i := 0; i < 10; i++ {
		tbl.Get(flowKey(i))
	}
	if !tbl.Delete(flowKey(4).Reverse()) {
		t.Fatal("Delete by reversed key failed")
	}
	if tbl.Delete(flowKey(4)) {
		t.Fatal("double Delete returned true")
	}
	if tbl.Len() != 9 {
		t.Fatalf("Len = %d, want 9", tbl.Len())
	}
	for i := 0; i < 10; i++ {
		if i == 4 {
			continue
		}
		before := tbl.Len()
		tbl.Get(flowKey(i))
		if tbl.Len() != before {
			t.Fatalf("flow %d lost after swap-remove", i)
		}
	}
}
