package core

import (
	"testing"

	"sysprof/internal/simnet"
)

func flowKey(i int) simnet.FlowKey {
	return simnet.FlowKey{
		Src: simnet.Addr{Node: simnet.NodeID(i % 7), Port: uint16(i)},
		Dst: simnet.Addr{Node: simnet.NodeID(100 + i%5), Port: uint16(40000 + i)},
	}
}

func TestHashedTableRehashGrowsBuckets(t *testing.T) {
	tbl := NewHashedTable(2) // 4 buckets
	ht := tbl.(*hashedTable)
	initial := len(ht.buckets)
	if initial != 4 {
		t.Fatalf("initial buckets = %d, want 4", initial)
	}

	const flows = 200
	states := make(map[simnet.FlowKey]*flowState, flows)
	for i := 0; i < flows; i++ {
		k := flowKey(i)
		states[k.Canonical()] = tbl.Get(k)
	}
	if tbl.Len() != flows {
		t.Fatalf("Len = %d, want %d", tbl.Len(), flows)
	}
	if len(ht.buckets) <= initial {
		t.Fatalf("buckets = %d after %d inserts, expected growth past %d",
			len(ht.buckets), flows, initial)
	}
	if got := len(ht.buckets) * maxLoadFactor; got < flows {
		t.Fatalf("load factor still above %d: %d buckets for %d flows",
			maxLoadFactor, len(ht.buckets), flows)
	}

	// Every flow must resolve to the same *flowState after rehashing,
	// from either direction of the conversation.
	for i := 0; i < flows; i++ {
		k := flowKey(i)
		want := states[k.Canonical()]
		if got := tbl.Get(k); got != want {
			t.Fatalf("flow %d lost its state after rehash", i)
		}
		if got := tbl.Get(k.Reverse()); got != want {
			t.Fatalf("flow %d (reversed) resolved to a different state", i)
		}
	}

	// Each visits every state exactly once.
	seen := 0
	tbl.Each(func(*flowState) { seen++ })
	if seen != flows {
		t.Fatalf("Each visited %d states, want %d", seen, flows)
	}
}

func TestHashedTableChainsStayShort(t *testing.T) {
	tbl := NewHashedTable(2)
	ht := tbl.(*hashedTable)
	for i := 0; i < 1000; i++ {
		tbl.Get(flowKey(i))
	}
	longest := 0
	for _, b := range ht.buckets {
		if len(b) > longest {
			longest = len(b)
		}
	}
	// With load factor capped at 4 and an FNV hash, chains should stay
	// well under a few dozen; a huge chain means rehashing is broken.
	if longest > 8*maxLoadFactor {
		t.Fatalf("longest chain = %d with %d buckets — rehash not keeping chains short",
			longest, len(ht.buckets))
	}
}
