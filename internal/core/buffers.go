package core

// DoubleBuffer is one CPU's record buffer pair. The LPA appends completed
// records to the active buffer; when it fills, the buffers swap and the
// dissemination daemon is notified to drain the full one ("each LPA
// maintains two per-CPU buffers ... when one of them has been filled, the
// dissemination daemon is notified, and the LPA switches to the next
// buffer"). If the daemon has not released the previous batch by the time
// the second buffer fills, new records are dropped — the paper's "if the
// data is not picked up in a timely fashion, it may be overwritten".
type DoubleBuffer struct {
	capacity int
	active   []Record
	standby  []Record
	busy     bool // a drained batch is outstanding
	single   bool // ablation: no standby buffer

	onFull func(batch []Record, release func())

	drops    uint64
	switches uint64
}

// NewDoubleBuffer returns a buffer pair of the given capacity. onFull is
// invoked with the filled batch and a release callback; the batch is only
// valid until release is called.
func NewDoubleBuffer(capacity int, onFull func(batch []Record, release func())) *DoubleBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &DoubleBuffer{
		capacity: capacity,
		active:   make([]Record, 0, capacity),
		standby:  make([]Record, 0, capacity),
		onFull:   onFull,
	}
}

// SetSingleBuffered switches to the ablation mode with no standby buffer:
// while a drained batch is outstanding, every push drops.
func (b *DoubleBuffer) SetSingleBuffered(single bool) { b.single = single }

// SetCapacity resizes the buffers (applies to future fills). The
// controller exposes this as a runtime knob.
func (b *DoubleBuffer) SetCapacity(capacity int) {
	if capacity >= 1 {
		b.capacity = capacity
	}
}

// Push appends a record, swapping buffers when full.
//
//sysprof:nonblocking
//sysprof:noalloc
func (b *DoubleBuffer) Push(rec Record) {
	if b.single && b.busy {
		b.drops++
		return
	}
	//lint:ignore hotalloc active is preallocated to capacity; append can only grow it after a runtime capacity raise, never in steady state
	b.active = append(b.active, rec)
	if len(b.active) < b.capacity {
		return
	}
	b.flush()
}

// Flush forces the current buffer out even if not full.
func (b *DoubleBuffer) Flush() {
	if len(b.active) == 0 {
		return
	}
	b.flush()
}

func (b *DoubleBuffer) flush() {
	if b.busy {
		// Both buffers committed: the oldest records are lost.
		b.drops += uint64(len(b.active))
		b.active = b.active[:0]
		return
	}
	batch := b.active
	b.active, b.standby = b.standby[:0], nil // standby becomes active
	b.busy = true
	b.switches++
	release := func() {
		b.standby = batch[:0]
		b.busy = false
	}
	if b.onFull != nil {
		b.onFull(batch, release)
	} else {
		release()
	}
}

// Stats reports dropped records and buffer switches.
func (b *DoubleBuffer) Stats() (drops, switches uint64) { return b.drops, b.switches }

// Len returns records currently in the active buffer.
func (b *DoubleBuffer) Len() int { return len(b.active) }

// BufferSet is the per-CPU collection of double buffers.
type BufferSet struct {
	per []*DoubleBuffer
}

// NewBufferSet builds numCPUs buffer pairs.
func NewBufferSet(numCPUs, capacity int, onFull func(cpu int, batch []Record, release func())) *BufferSet {
	if numCPUs < 1 {
		numCPUs = 1
	}
	s := &BufferSet{per: make([]*DoubleBuffer, numCPUs)}
	for i := range s.per {
		cpu := i
		var cb func(batch []Record, release func())
		if onFull != nil {
			cb = func(batch []Record, release func()) { onFull(cpu, batch, release) }
		}
		s.per[i] = NewDoubleBuffer(capacity, cb)
	}
	return s
}

// Push routes a record to the buffer of the CPU it was captured on.
//
//sysprof:nonblocking
func (s *BufferSet) Push(cpu int, rec Record) {
	if cpu < 0 || cpu >= len(s.per) {
		cpu = 0
	}
	s.per[cpu].Push(rec)
}

// FlushAll forces every CPU's buffer out.
func (s *BufferSet) FlushAll() {
	for _, b := range s.per {
		b.Flush()
	}
}

// Buffer returns CPU i's buffer pair (nil when out of range).
func (s *BufferSet) Buffer(i int) *DoubleBuffer {
	if i < 0 || i >= len(s.per) {
		return nil
	}
	return s.per[i]
}

// NumCPUs returns the number of buffer pairs.
func (s *BufferSet) NumCPUs() int { return len(s.per) }

// Stats sums drops and switches across CPUs.
func (s *BufferSet) Stats() (drops, switches uint64) {
	for _, b := range s.per {
		d, sw := b.Stats()
		drops += d
		switches += sw
	}
	return drops, switches
}
