package core

// DoubleBuffer is one CPU's record buffer pair. The LPA appends completed
// records to the active buffer; when it fills, the buffers swap and the
// dissemination daemon is notified to drain the full one ("each LPA
// maintains two per-CPU buffers ... when one of them has been filled, the
// dissemination daemon is notified, and the LPA switches to the next
// buffer"). If the daemon has not released the previous batch by the time
// the second buffer fills, new records are dropped — the paper's "if the
// data is not picked up in a timely fashion, it may be overwritten".
//
// Buffers are columnar (RecordColumns): the drain path sweeps contiguous
// per-field slices instead of striding across ~240-byte Record structs,
// and the batch stays structure-of-arrays all the way to GPA ingest.
type DoubleBuffer struct {
	capacity int
	active   *RecordColumns
	standby  *RecordColumns
	busy     bool // a drained batch is outstanding
	single   bool // ablation: no standby buffer

	onFull func(batch *RecordColumns, release func())

	drops    uint64
	switches uint64
}

// NewDoubleBuffer returns a buffer pair of the given capacity. onFull is
// invoked with the filled batch and a release callback; the batch is only
// valid until release is called.
func NewDoubleBuffer(capacity int, onFull func(batch *RecordColumns, release func())) *DoubleBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &DoubleBuffer{
		capacity: capacity,
		active:   NewRecordColumns(capacity),
		standby:  NewRecordColumns(capacity),
		onFull:   onFull,
	}
}

// SetSingleBuffered switches to the ablation mode with no standby buffer:
// while a drained batch is outstanding, every push drops.
func (b *DoubleBuffer) SetSingleBuffered(single bool) { b.single = single }

// SetCapacity resizes the buffers (applies to future fills). The
// controller exposes this as a runtime knob.
func (b *DoubleBuffer) SetCapacity(capacity int) {
	if capacity >= 1 {
		b.capacity = capacity
	}
}

// Push appends a record, swapping buffers when full.
//
//sysprof:nonblocking
//sysprof:noalloc
func (b *DoubleBuffer) Push(rec Record) {
	if b.single && b.busy {
		b.drops++
		return
	}
	//lint:ignore hotalloc Append copies rec's fields into the columns and does not retain the pointer, so &rec stays on the stack
	b.active.Append(&rec)
	if b.active.Len() < b.capacity {
		return
	}
	b.flush()
}

// Flush forces the current buffer out even if not full.
func (b *DoubleBuffer) Flush() {
	if b.active.Len() == 0 {
		return
	}
	b.flush()
}

func (b *DoubleBuffer) flush() {
	if b.busy {
		// Both buffers committed: the oldest records are lost.
		b.drops += uint64(b.active.Len())
		b.active.Reset()
		return
	}
	batch := b.active
	b.standby.Reset()
	b.active, b.standby = b.standby, nil // standby becomes active
	b.busy = true
	b.switches++
	release := func() {
		batch.Reset()
		b.standby = batch
		b.busy = false
	}
	if b.onFull != nil {
		b.onFull(batch, release)
	} else {
		release()
	}
}

// Stats reports dropped records and buffer switches.
func (b *DoubleBuffer) Stats() (drops, switches uint64) { return b.drops, b.switches }

// Len returns records currently in the active buffer.
func (b *DoubleBuffer) Len() int { return b.active.Len() }

// BufferSet is the per-CPU collection of double buffers.
type BufferSet struct {
	per []*DoubleBuffer
}

// NewBufferSet builds numCPUs buffer pairs.
func NewBufferSet(numCPUs, capacity int, onFull func(cpu int, batch *RecordColumns, release func())) *BufferSet {
	if numCPUs < 1 {
		numCPUs = 1
	}
	s := &BufferSet{per: make([]*DoubleBuffer, numCPUs)}
	for i := range s.per {
		cpu := i
		var cb func(batch *RecordColumns, release func())
		if onFull != nil {
			cb = func(batch *RecordColumns, release func()) { onFull(cpu, batch, release) }
		}
		s.per[i] = NewDoubleBuffer(capacity, cb)
	}
	return s
}

// Push routes a record to the buffer of the CPU it was captured on.
//
//sysprof:nonblocking
func (s *BufferSet) Push(cpu int, rec Record) {
	if cpu < 0 || cpu >= len(s.per) {
		cpu = 0
	}
	s.per[cpu].Push(rec)
}

// FlushAll forces every CPU's buffer out.
func (s *BufferSet) FlushAll() {
	for _, b := range s.per {
		b.Flush()
	}
}

// Buffer returns CPU i's buffer pair (nil when out of range).
func (s *BufferSet) Buffer(i int) *DoubleBuffer {
	if i < 0 || i >= len(s.per) {
		return nil
	}
	return s.per[i]
}

// NumCPUs returns the number of buffer pairs.
func (s *BufferSet) NumCPUs() int { return len(s.per) }

// Stats sums drops and switches across CPUs.
func (s *BufferSet) Stats() (drops, switches uint64) {
	for _, b := range s.per {
		d, sw := b.Stats()
		drops += d
		switches += sw
	}
	return drops, switches
}
