package core

import (
	"testing"
	"time"

	"sysprof/internal/kprof"
	"sysprof/internal/sim"
	"sysprof/internal/simnet"
	"sysprof/internal/simos"
)

func TestARMTrackerIgnoresUntagged(t *testing.T) {
	hub := kprof.NewHub(1, func() time.Duration { return 0 })
	hub.SetPerEventCost(0)
	tr := NewARMTracker(hub)
	defer tr.Close()
	hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Bytes: 100})
	if tr.Events() != 0 || len(tr.Active()) != 0 {
		t.Fatal("untagged event tracked")
	}
}

func TestARMTrackerAccumulatesPerTag(t *testing.T) {
	now := new(time.Duration)
	hub := kprof.NewHub(1, func() time.Duration { return *now })
	hub.SetPerEventCost(0)
	tr := NewARMTracker(hub)
	defer tr.Close()

	at := func(d time.Duration, ev kprof.Event) {
		*now = d
		hub.Emit(&ev)
	}
	at(0, kprof.Event{Type: kprof.EvNetRx, Tag: 1, Bytes: 100})
	at(time.Millisecond, kprof.Event{Type: kprof.EvNetRx, Tag: 2, Bytes: 200})
	at(2*time.Millisecond, kprof.Event{Type: kprof.EvNetUserRead, Tag: 1, PID: 9, Proc: "srv",
		Aux: int64(time.Millisecond)})
	at(3*time.Millisecond, kprof.Event{Type: kprof.EvNetTx, Tag: 1, Bytes: 300})

	acts := tr.Active()
	if len(acts) != 2 {
		t.Fatalf("active = %d", len(acts))
	}
	a1 := acts[0]
	if a1.Tag != 1 || a1.Packets != 2 || a1.Bytes != 400 {
		t.Fatalf("a1 = %+v", a1)
	}
	if !a1.Handled || a1.ServerProc != "srv" || a1.BufferWait != time.Millisecond {
		t.Fatalf("a1 handling = %+v", a1)
	}
	if a1.Hops != 2 {
		t.Fatalf("a1 hops = %d (rx run + tx run)", a1.Hops)
	}
	if a1.Span() != 3*time.Millisecond {
		t.Fatalf("a1 span = %v", a1.Span())
	}

	got, ok := tr.Complete(1)
	if !ok || got.Tag != 1 {
		t.Fatalf("Complete: %+v %v", got, ok)
	}
	if _, ok := tr.Complete(1); ok {
		t.Fatal("double complete succeeded")
	}
	if _, ok := tr.Complete(99); ok {
		t.Fatal("unknown tag completed")
	}
	if len(tr.Completed()) != 1 || len(tr.Active()) != 1 {
		t.Fatal("completion bookkeeping wrong")
	}
}

// The headline: two requests interleaved on ONE flow are merged by the
// black-box interaction LPA (a known limitation the paper states) but
// separated exactly by ARM tags.
func TestARMSeparatesInterleavedRequests(t *testing.T) {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	server, err := simos.NewNode(eng, network, "server", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := simos.NewNode(eng, network, "client", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Connect(server.ID(), client.ID()); err != nil {
		t.Fatal(err)
	}
	lpa := NewLPA(server.Hub(), Config{})
	arm := NewARMTracker(server.Hub())
	defer arm.Close()

	ssock := server.MustBind(80)
	csock := client.MustBind(9000)
	// Server answers each message, preserving tags via Reply.
	server.Spawn("srv", func(p *simos.Process) {
		var loop func()
		loop = func() {
			p.Recv(ssock, func(m *simos.Message) {
				p.Compute(time.Millisecond, func() {
					p.Reply(ssock, m, 500, nil, loop)
				})
			})
		}
		loop()
	})
	// Client pipelines two tagged requests back-to-back on the same flow
	// before reading any response: they interleave.
	done := 0
	client.Spawn("cli", func(p *simos.Process) {
		p.SendActivity(csock, ssock.Addr(), 300, nil, 101, func() {
			p.SendActivity(csock, ssock.Addr(), 300, nil, 102, func() {
				p.Recv(csock, func(m *simos.Message) {
					done++
					p.Recv(csock, func(m *simos.Message) { done++ })
				})
			})
		})
	})
	if err := eng.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	lpa.FlushOpen()
	if done != 2 {
		t.Fatalf("client received %d responses", done)
	}

	// Black-box view: the two requests form a single message run on the
	// flow => one merged interaction.
	if got := len(lpa.Window().Snapshot()); got != 1 {
		t.Fatalf("black-box interactions = %d (expected merge into 1)", got)
	}
	// ARM view: two distinct activities, each handled by the server.
	a1, ok1 := arm.Complete(101)
	a2, ok2 := arm.Complete(102)
	if !ok1 || !ok2 {
		t.Fatalf("activities missing: %v %v", ok1, ok2)
	}
	for _, a := range []Activity{a1, a2} {
		if !a.Handled || a.ServerProc != "srv" {
			t.Fatalf("activity %d not attributed: %+v", a.Tag, a)
		}
		if a.Packets < 2 {
			t.Fatalf("activity %d packets = %d", a.Tag, a.Packets)
		}
	}
}

func TestReplyPropagatesTag(t *testing.T) {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	server, err := simos.NewNode(eng, network, "server", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := simos.NewNode(eng, network, "client", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Connect(server.ID(), client.ID()); err != nil {
		t.Fatal(err)
	}
	ssock := server.MustBind(80)
	csock := client.MustBind(9000)
	server.Spawn("srv", func(p *simos.Process) {
		p.Recv(ssock, func(m *simos.Message) {
			p.Reply(ssock, m, 100, nil, nil)
		})
	})
	var gotTag uint64
	client.Spawn("cli", func(p *simos.Process) {
		p.SendActivity(csock, ssock.Addr(), 100, nil, 77, func() {
			p.Recv(csock, func(m *simos.Message) { gotTag = m.Tag })
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if gotTag != 77 {
		t.Fatalf("response tag = %d, want 77 (Reply must propagate)", gotTag)
	}
}
