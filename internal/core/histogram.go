package core

import (
	"fmt"
	"strings"
	"time"
)

// Histogram is a log2-bucketed latency distribution. Bucket i counts
// samples in [2^i, 2^(i+1)) nanoseconds; bucket 0 also absorbs
// sub-nanosecond samples. It is fixed-size and allocation-free on the
// record path, suitable for in-kernel analyzers.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

func bucketOf(d time.Duration) int {
	n := uint64(d)
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Min and Max return the extremes (zero when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the average sample (zero when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) at
// bucket resolution: the top of the first bucket at or beyond the target
// rank.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			return time.Duration(uint64(1) << uint(i+1)) // bucket upper bound
		}
	}
	return h.max
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// String renders a compact summary.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram{empty}"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "histogram{n=%d mean=%v min=%v p99<=%v max=%v}",
		h.count, h.Mean(), h.min, h.Quantile(0.99), h.max)
	return sb.String()
}
