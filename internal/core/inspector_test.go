package core

import (
	"strings"
	"testing"
	"time"

	"sysprof/internal/kprof"
	"sysprof/internal/sim"
	"sysprof/internal/simnet"
	"sysprof/internal/simos"
)

func TestFlowInspectorCapturesPacketPath(t *testing.T) {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	server, err := simos.NewNode(eng, network, "server", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := simos.NewNode(eng, network, "client", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Connect(server.ID(), client.ID()); err != nil {
		t.Fatal(err)
	}
	ssock := server.MustBind(80)
	csock := client.MustBind(9000)
	watched := simnet.FlowKey{Src: csock.Addr(), Dst: ssock.Addr()}
	ins := NewFlowInspector(server.Hub(), watched, 64)
	defer ins.Close()

	// Other traffic on a second flow must not appear.
	osock := client.MustBind(9001)

	server.Spawn("srv", func(p *simos.Process) {
		var loop func()
		loop = func() {
			p.Recv(ssock, func(m *simos.Message) {
				p.Compute(time.Millisecond, func() { p.Reply(ssock, m, 3*simnet.MSS, nil, loop) })
			})
		}
		loop()
	})
	client.Spawn("cli", func(p *simos.Process) {
		p.Send(csock, ssock.Addr(), 2*simnet.MSS, nil, func() {
			p.Recv(csock, func(m *simos.Message) {})
		})
	})
	client.Spawn("other", func(p *simos.Process) {
		p.Send(osock, ssock.Addr(), 100, nil, nil)
	})
	if err := eng.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}

	pkts := ins.Packets()
	// Request: 2 inbound packets; response: 3 outbound.
	var in, out int
	for _, p := range pkts {
		if p.Inbound {
			in++
			if p.DeliveredAt == 0 || p.ReadAt == 0 {
				t.Fatalf("inbound packet missing path stamps: %+v", p)
			}
			if p.ProtoLatency() <= 0 || p.BufferLatency() < 0 {
				t.Fatalf("latencies wrong: %+v", p)
			}
			if p.ReadAt < p.DeliveredAt || p.DeliveredAt < p.RxAt {
				t.Fatalf("path out of order: %+v", p)
			}
		} else {
			out++
		}
	}
	if in != 2 || out != 3 {
		t.Fatalf("captured in=%d out=%d, want 2/3", in, out)
	}
	r := ins.Render()
	if !strings.Contains(r, "5 packets captured") || !strings.Contains(r, "in ") {
		t.Fatalf("render:\n%s", r)
	}
}

func TestFlowInspectorCapBoundsMemory(t *testing.T) {
	now := time.Duration(0)
	hub := kprofHubAt(&now)
	flow := simnet.FlowKey{Src: simnet.Addr{Node: 1, Port: 1}, Dst: simnet.Addr{Node: 2, Port: 2}}
	ins := NewFlowInspector(hub, flow, 3)
	defer ins.Close()
	for i := 0; i < 10; i++ {
		emitNetRx(hub, flow, uint64(i))
	}
	if len(ins.Packets()) != 3 {
		t.Fatalf("captured %d, want cap 3", len(ins.Packets()))
	}
	if ins.Dropped() != 7 {
		t.Fatalf("dropped = %d", ins.Dropped())
	}
}

func TestFlowInspectorIgnoresOtherFlows(t *testing.T) {
	now := time.Duration(0)
	hub := kprofHubAt(&now)
	flow := simnet.FlowKey{Src: simnet.Addr{Node: 1, Port: 1}, Dst: simnet.Addr{Node: 2, Port: 2}}
	other := simnet.FlowKey{Src: simnet.Addr{Node: 3, Port: 1}, Dst: simnet.Addr{Node: 2, Port: 2}}
	ins := NewFlowInspector(hub, flow, 8)
	defer ins.Close()
	emitNetRx(hub, other, 1)
	emitNetRx(hub, flow.Reverse(), 2) // reverse direction of the watched flow counts
	if got := len(ins.Packets()); got != 1 {
		t.Fatalf("captured %d, want 1", got)
	}
}

// kprofHubAt and emitNetRx are small helpers for synthetic inspector tests.
func kprofHubAt(now *time.Duration) *kprof.Hub {
	h := kprof.NewHub(2, func() time.Duration { return *now })
	h.SetPerEventCost(0)
	return h
}

func emitNetRx(h *kprof.Hub, flow simnet.FlowKey, msg uint64) {
	h.Emit(&kprof.Event{Type: kprof.EvNetRx, Flow: flow, MsgID: msg, Bytes: 100})
}
