package core

import (
	"fmt"
	"strings"
	"time"

	"sysprof/internal/kprof"
	"sysprof/internal/simnet"
)

// FlowInspector is the finest-grain network view SysProf offers: for one
// selected flow it records every packet's progress through the kernel —
// NIC arrival, protocol-processing completion, user-level read — giving
// the paper's "details about the time spent in different steps of the
// network protocol processing" for individual packets. It uses the
// Kprof flow-filter facility, so unrelated traffic costs nothing.
//
// Inspectors are diagnostic tools: attach one when the interaction LPA
// points at a suspect flow, read the packet timeline, detach.
type FlowInspector struct {
	flow simnet.FlowKey
	sub  *kprof.Subscription

	packets []PacketTrace
	// pending maps msgID to indices of packets awaiting deliver/read.
	pending map[uint64][]int
	cap     int
	dropped uint64
}

// PacketTrace is one packet's kernel path.
type PacketTrace struct {
	MsgID uint64
	Seq   int32
	Bytes int32
	// Inbound is true for packets arriving at this node.
	Inbound bool
	// RxAt is NIC arrival (inbound) or wire handoff (outbound).
	RxAt time.Duration
	// DeliveredAt is when the packet's message entered the socket buffer
	// (zero until then; inbound only, stamped on the message's last
	// fragment).
	DeliveredAt time.Duration
	// ReadAt is when a user process consumed the message (zero until
	// then; inbound only).
	ReadAt time.Duration
}

// ProtoLatency is the protocol-processing component (rx to deliver).
func (p *PacketTrace) ProtoLatency() time.Duration {
	if p.DeliveredAt == 0 {
		return 0
	}
	return p.DeliveredAt - p.RxAt
}

// BufferLatency is the socket-buffer component (deliver to read).
func (p *PacketTrace) BufferLatency() time.Duration {
	if p.ReadAt == 0 || p.DeliveredAt == 0 {
		return 0
	}
	return p.ReadAt - p.DeliveredAt
}

// NewFlowInspector attaches an inspector for the given flow (either
// direction) keeping at most capPackets traces (oldest dropped).
func NewFlowInspector(hub *kprof.Hub, flow simnet.FlowKey, capPackets int) *FlowInspector {
	if capPackets < 1 {
		capPackets = 1024
	}
	ins := &FlowInspector{
		flow:    flow.Canonical(),
		pending: make(map[uint64][]int),
		cap:     capPackets,
	}
	ins.sub = hub.Subscribe(
		kprof.MaskOf(kprof.EvNetRx, kprof.EvNetTx, kprof.EvNetDeliver, kprof.EvNetUserRead),
		ins.handle,
		kprof.WithFlowFilter(func(f simnet.FlowKey) bool { return f.Canonical() == ins.flow }),
	)
	return ins
}

// Close detaches the inspector.
func (ins *FlowInspector) Close() { ins.sub.Close() }

func (ins *FlowInspector) handle(ev *kprof.Event) {
	switch ev.Type {
	case kprof.EvNetRx, kprof.EvNetTx:
		if len(ins.packets) >= ins.cap {
			ins.dropped++
			return
		}
		ins.packets = append(ins.packets, PacketTrace{
			MsgID: ev.MsgID, Seq: ev.Seq, Bytes: ev.Bytes,
			Inbound: ev.Type == kprof.EvNetRx,
			RxAt:    ev.Time,
		})
		if ev.Type == kprof.EvNetRx {
			idx := len(ins.packets) - 1
			ins.pending[ev.MsgID] = append(ins.pending[ev.MsgID], idx)
		}
	case kprof.EvNetDeliver:
		for _, idx := range ins.pending[ev.MsgID] {
			if ins.packets[idx].DeliveredAt == 0 {
				ins.packets[idx].DeliveredAt = ev.Time
			}
		}
	case kprof.EvNetUserRead:
		for _, idx := range ins.pending[ev.MsgID] {
			if ins.packets[idx].ReadAt == 0 {
				ins.packets[idx].ReadAt = ev.Time
			}
		}
		delete(ins.pending, ev.MsgID)
	}
}

// Packets returns the captured traces in arrival order.
func (ins *FlowInspector) Packets() []PacketTrace {
	out := make([]PacketTrace, len(ins.packets))
	copy(out, ins.packets)
	return out
}

// Dropped returns traces lost to the capacity cap.
func (ins *FlowInspector) Dropped() uint64 { return ins.dropped }

// Render prints the packet timeline.
func (ins *FlowInspector) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "flow %s: %d packets captured (%d dropped)\n",
		ins.flow, len(ins.packets), ins.dropped)
	sb.WriteString("  dir  msg/seq     bytes      rx            proto       bufwait\n")
	for _, p := range ins.packets {
		dir := "out"
		if p.Inbound {
			dir = "in "
		}
		fmt.Fprintf(&sb, "  %s  %4d/%-4d  %6d  %12v  %10v  %10v\n",
			dir, p.MsgID, p.Seq, p.Bytes, p.RxAt,
			p.ProtoLatency().Round(time.Nanosecond),
			p.BufferLatency().Round(time.Nanosecond))
	}
	return sb.String()
}
