package core

import (
	"encoding/binary"
	"time"
)

// Column encodings for the compressed columnar frame (pbio 0x05). The
// values must match pbio's ColEnc* constants — core stays free of a pbio
// import the same way the wire helpers in columns.go mirror pbio's byte
// conventions without one; a cross-package test in internal/dissem pins
// the equality.
const (
	zEncRaw   = 0x00
	zEncDelta = 0x01
	zEncRLE   = 0x02
	zEncDict  = 0x03
)

// zDictMax caps a string column's dictionary. Columns with more distinct
// values fall back to raw encoding, which keeps the dictionary build a
// bounded linear scan over a stack array — no map, no allocation.
const zDictMax = 32

// appendZigzag appends one zigzag-folded varint delta.
func appendZigzag(buf []byte, d int64) []byte {
	return binary.AppendUvarint(buf, uint64(d<<1)^uint64(d>>63))
}

func appendDeltaU64(buf []byte, col []uint64) []byte {
	var prev uint64
	for _, v := range col {
		buf = appendZigzag(buf, int64(v-prev))
		prev = v
	}
	return buf
}

func appendDeltaDur(buf []byte, col []time.Duration) []byte {
	var prev int64
	for _, v := range col {
		buf = appendZigzag(buf, int64(v)-prev)
		prev = int64(v)
	}
	return buf
}

func appendDeltaInt(buf []byte, col []int) []byte {
	var prev int64
	for _, v := range col {
		buf = appendZigzag(buf, int64(v)-prev)
		prev = int64(v)
	}
	return buf
}

// appendRLE run-length encodes a narrow integer column. Values are
// masked to 32 bits — the widest RLE column — so a negative i32 costs a
// 5-byte varint instead of a sign-extended 10-byte one; the decoder
// truncates to the column's width, so the round trip is exact.
func appendRLE[T ~uint8 | ~uint16 | ~int32](buf []byte, col []T) []byte {
	for i, n := 0, len(col); i < n; {
		v := col[i]
		j := i + 1
		for j < n && col[j] == v {
			j++
		}
		buf = binary.AppendUvarint(buf, uint64(j-i))
		buf = binary.AppendUvarint(buf, uint64(v)&0xffffffff)
		i = j
	}
	return buf
}

// appendDictStrings dictionary-encodes a string column: distinct values
// up front, then run-length encoded indices. Columns with more than
// zDictMax distinct values are emitted raw instead — past that point the
// column is not low-cardinality and the linear dictionary scan stops
// paying for itself.
func appendDictStrings(buf []byte, col []string) []byte {
	var dict [zDictMax]string
	nd := 0
	for _, s := range col {
		k := 0
		for ; k < nd; k++ {
			if dict[k] == s {
				break
			}
		}
		if k == nd {
			if nd == zDictMax {
				buf = append(buf, zEncRaw)
				for _, s := range col {
					buf = appendWireString(buf, s)
				}
				return buf
			}
			dict[nd] = s
			nd++
		}
	}
	buf = append(buf, zEncDict)
	buf = binary.AppendUvarint(buf, uint64(nd))
	for k := 0; k < nd; k++ {
		buf = appendWireString(buf, dict[k])
	}
	for i, n := 0, len(col); i < n; {
		s := col[i]
		j := i + 1
		for j < n && col[j] == s {
			j++
		}
		idx := 0
		for dict[idx] != s {
			idx++
		}
		buf = binary.AppendUvarint(buf, uint64(j-i))
		buf = binary.AppendUvarint(buf, uint64(idx))
		i = j
	}
	return buf
}

// AppendCompressedColumn implements pbio's compressed column-batch
// contract for 0x05 frames: each column opens with an encoding tag and
// carries that encoding's payload. The choice is static per field —
// delta varints for identifiers, timestamps, sizes, and durations
// (neighbouring rows are close in time and magnitude), run-length for
// the low-cardinality node/CPU/PID columns a shard link naturally
// clusters, and dictionaries for the class and process-name strings.
//
//sysprof:nonblocking
func (c *RecordColumns) AppendCompressedColumn(buf []byte, field int) []byte {
	n := c.Len()
	switch field {
	case 0: // ID u64: near-monotonic per origin, deltas stay short
		buf = append(buf, zEncDelta)
		buf = appendDeltaU64(buf, c.IDs)
	case 1: // Node u16: shard links carry long same-node runs
		buf = append(buf, zEncRLE)
		buf = appendRLE(buf, c.Nodes)
	case 2: // Flow.Src.Node u16
		buf = append(buf, zEncRLE)
		for i := 0; i < n; {
			v := c.Flows[i].Src.Node
			j := i + 1
			for j < n && c.Flows[j].Src.Node == v {
				j++
			}
			buf = binary.AppendUvarint(buf, uint64(j-i))
			buf = binary.AppendUvarint(buf, uint64(v))
			i = j
		}
	case 3: // Flow.Src.Port u16: ephemeral ports climb, deltas stay small
		buf = append(buf, zEncDelta)
		var prev int64
		for i := 0; i < n; i++ {
			v := int64(c.Flows[i].Src.Port)
			buf = appendZigzag(buf, v-prev)
			prev = v
		}
	case 4: // Flow.Dst.Node u16
		buf = append(buf, zEncRLE)
		for i := 0; i < n; {
			v := c.Flows[i].Dst.Node
			j := i + 1
			for j < n && c.Flows[j].Dst.Node == v {
				j++
			}
			buf = binary.AppendUvarint(buf, uint64(j-i))
			buf = binary.AppendUvarint(buf, uint64(v))
			i = j
		}
	case 5: // Flow.Dst.Port u16: service ports repeat, deltas collapse to zero
		buf = append(buf, zEncDelta)
		var prev int64
		for i := 0; i < n; i++ {
			v := int64(c.Flows[i].Dst.Port)
			buf = appendZigzag(buf, v-prev)
			prev = v
		}
	case 6: // Class string
		buf = appendDictStrings(buf, c.Classes)
	case 7: // CPU u8
		buf = append(buf, zEncRLE)
		buf = appendRLE(buf, c.CPUs)
	case 8: // Start duration: timestamps are the textbook delta column
		buf = append(buf, zEncDelta)
		buf = appendDeltaDur(buf, c.Starts)
	case 9: // End duration
		buf = append(buf, zEncDelta)
		buf = appendDeltaDur(buf, c.Ends)
	case 10: // ReqPackets i64
		buf = append(buf, zEncDelta)
		buf = appendDeltaInt(buf, c.ReqPackets)
	case 11: // ReqBytes i64
		buf = append(buf, zEncDelta)
		buf = appendDeltaInt(buf, c.ReqBytes)
	case 12: // RespPackets i64
		buf = append(buf, zEncDelta)
		buf = appendDeltaInt(buf, c.RespPackets)
	case 13: // RespBytes i64
		buf = append(buf, zEncDelta)
		buf = appendDeltaInt(buf, c.RespBytes)
	case 14: // ProtoTime duration
		buf = append(buf, zEncDelta)
		buf = appendDeltaDur(buf, c.ProtoTimes)
	case 15: // TxTime duration
		buf = append(buf, zEncDelta)
		buf = appendDeltaDur(buf, c.TxTimes)
	case 16: // BufferWait duration
		buf = append(buf, zEncDelta)
		buf = appendDeltaDur(buf, c.BufferWaits)
	case 17: // SyscallTime duration
		buf = append(buf, zEncDelta)
		buf = appendDeltaDur(buf, c.SyscallTimes)
	case 18: // UserTime duration
		buf = append(buf, zEncDelta)
		buf = appendDeltaDur(buf, c.UserTimes)
	case 19: // BlockedTime duration
		buf = append(buf, zEncDelta)
		buf = appendDeltaDur(buf, c.BlockedTimes)
	case 20: // ServerPID i32: one server process per link in steady state
		buf = append(buf, zEncRLE)
		buf = appendRLE(buf, c.ServerPIDs)
	case 21: // ServerProc string
		buf = appendDictStrings(buf, c.ServerProcs)
	case 22: // CtxSwitches u64
		buf = append(buf, zEncDelta)
		buf = appendDeltaU64(buf, c.CtxSwitches)
	case 23: // DiskOps u64
		buf = append(buf, zEncDelta)
		buf = appendDeltaU64(buf, c.DiskOps)
	}
	return buf
}
