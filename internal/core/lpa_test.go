package core

import (
	"testing"
	"testing/quick"
	"time"

	"sysprof/internal/kprof"
	"sysprof/internal/sim"
	"sysprof/internal/simnet"
	"sysprof/internal/simos"
)

// --- Flow-table unit tests ---

func TestFlowTablesAgree(t *testing.T) {
	ht, lt := NewHashedTable(4), NewLinearTable()
	keys := []simnet.FlowKey{
		{Src: simnet.Addr{Node: 1, Port: 10}, Dst: simnet.Addr{Node: 2, Port: 80}},
		{Src: simnet.Addr{Node: 2, Port: 80}, Dst: simnet.Addr{Node: 1, Port: 10}},
		{Src: simnet.Addr{Node: 3, Port: 5}, Dst: simnet.Addr{Node: 2, Port: 80}},
	}
	for _, k := range keys {
		ht.Get(k)
		lt.Get(k)
	}
	// Both directions of a flow share one state: 2 distinct flows.
	if ht.Len() != 2 || lt.Len() != 2 {
		t.Fatalf("lens hashed=%d linear=%d, want 2", ht.Len(), lt.Len())
	}
	if ht.Get(keys[0]) != ht.Get(keys[1]) {
		t.Fatal("hashed table: directions do not share state")
	}
	n := 0
	ht.Each(func(*flowState) { n++ })
	if n != 2 {
		t.Fatalf("Each visited %d", n)
	}
}

func TestFlowTableIdentityProperty(t *testing.T) {
	prop := func(an, ap, bn, bp uint16) bool {
		tbl := NewHashedTable(3)
		k := simnet.FlowKey{
			Src: simnet.Addr{Node: simnet.NodeID(an), Port: ap},
			Dst: simnet.Addr{Node: simnet.NodeID(bn), Port: bp},
		}
		return tbl.Get(k) == tbl.Get(k.Reverse()) && tbl.Len() == 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Synthetic event-stream tests (drive the LPA directly) ---

type lpaHarness struct {
	hub *kprof.Hub
	lpa *LPA
	now time.Duration
}

func newLPAHarness(cfg Config) *lpaHarness {
	h := &lpaHarness{}
	h.hub = kprof.NewHub(2, func() time.Duration { return h.now })
	h.hub.SetPerEventCost(0)
	h.lpa = NewLPA(h.hub, cfg)
	return h
}

func (h *lpaHarness) at(d time.Duration, ev kprof.Event) {
	h.now = d
	h.hub.Emit(&ev)
}

var (
	cliAddr = simnet.Addr{Node: 1, Port: 1000}
	srvAddr = simnet.Addr{Node: 2, Port: 80}
	reqFlow = simnet.FlowKey{Src: cliAddr, Dst: srvAddr}
)

// playInteraction drives one request/response pair through the harness,
// starting at base. Returns the time after the final event.
func playInteraction(h *lpaHarness, base time.Duration) time.Duration {
	ms := func(d int) time.Duration { return base + time.Duration(d)*time.Millisecond }
	h.at(ms(0), kprof.Event{Type: kprof.EvNetRx, Flow: reqFlow, Bytes: 500})
	h.at(ms(1), kprof.Event{Type: kprof.EvNetDeliver, Flow: reqFlow, Bytes: 448})
	h.at(ms(3), kprof.Event{Type: kprof.EvNetUserRead, Flow: reqFlow, PID: 9, Proc: "server",
		Bytes: 448, Aux: int64(2 * time.Millisecond)})
	h.at(ms(4), kprof.Event{Type: kprof.EvSyscallEnter, PID: 9, Proc: "write"})
	h.at(ms(5), kprof.Event{Type: kprof.EvSyscallExit, PID: 9, Proc: "write"})
	h.at(ms(6), kprof.Event{Type: kprof.EvBlock, PID: 9})
	h.at(ms(8), kprof.Event{Type: kprof.EvWake, PID: 9})
	h.at(ms(10), kprof.Event{Type: kprof.EvNetSend, Flow: reqFlow.Reverse(), PID: 9, Bytes: 900})
	h.at(ms(11), kprof.Event{Type: kprof.EvNetTx, Flow: reqFlow.Reverse(), Bytes: 952, Last: true})
	return ms(11)
}

func TestLPAExtractsInteraction(t *testing.T) {
	h := newLPAHarness(Config{})
	end := playInteraction(h, 0)
	// Next request closes the first interaction.
	h.at(end+time.Millisecond, kprof.Event{Type: kprof.EvNetRx, Flow: reqFlow, Bytes: 500})

	snap := h.lpa.Window().Snapshot()
	if len(snap) != 1 {
		t.Fatalf("window has %d records, want 1", len(snap))
	}
	r := snap[0]
	if r.ReqPackets != 1 || r.ReqBytes != 500 {
		t.Fatalf("request counters: %+v", r)
	}
	if r.RespPackets != 1 || r.RespBytes != 952 {
		t.Fatalf("response counters: %+v", r)
	}
	if r.Start != 0 || r.End != 11*time.Millisecond {
		t.Fatalf("span %v..%v", r.Start, r.End)
	}
	if r.ProtoTime != time.Millisecond {
		t.Fatalf("ProtoTime = %v, want 1ms", r.ProtoTime)
	}
	if r.BufferWait != 2*time.Millisecond {
		t.Fatalf("BufferWait = %v, want 2ms", r.BufferWait)
	}
	if r.SyscallTime != time.Millisecond {
		t.Fatalf("SyscallTime = %v, want 1ms", r.SyscallTime)
	}
	if r.BlockedTime != 2*time.Millisecond {
		t.Fatalf("BlockedTime = %v, want 2ms", r.BlockedTime)
	}
	// Episode read@3ms..send@10ms = 7ms; minus 1ms syscall, 2ms blocked.
	if r.UserTime != 4*time.Millisecond {
		t.Fatalf("UserTime = %v, want 4ms", r.UserTime)
	}
	if r.ServerPID != 9 || r.ServerProc != "server" {
		t.Fatalf("server identity: %+v", r)
	}
	if r.TxTime != time.Millisecond {
		t.Fatalf("TxTime = %v, want 1ms (send@10 -> tx@11)", r.TxTime)
	}
	if r.Class != "port:80" {
		t.Fatalf("Class = %q", r.Class)
	}
	if r.KernelTime() != 1*time.Millisecond+2*time.Millisecond+1*time.Millisecond+1*time.Millisecond {
		t.Fatalf("KernelTime = %v", r.KernelTime())
	}
	if r.Residence() != 11*time.Millisecond {
		t.Fatalf("Residence = %v", r.Residence())
	}
}

func TestLPASequentialInteractionsGetDistinctIDs(t *testing.T) {
	h := newLPAHarness(Config{})
	base := time.Duration(0)
	for i := 0; i < 3; i++ {
		base = playInteraction(h, base) + time.Millisecond
	}
	h.lpa.FlushOpen()
	snap := h.lpa.Window().Snapshot()
	if len(snap) != 3 {
		t.Fatalf("window = %d records, want 3", len(snap))
	}
	seen := map[uint64]bool{}
	for _, r := range snap {
		if seen[r.ID] {
			t.Fatalf("duplicate interaction ID %d", r.ID)
		}
		seen[r.ID] = true
	}
	if st := h.lpa.Stats(); st.Interactions != 3 {
		t.Fatalf("Interactions = %d", st.Interactions)
	}
}

func TestLPAMultiPacketMessageRuns(t *testing.T) {
	// Multiple packets in the same direction form one message (one
	// interaction side), per the paper's definition.
	h := newLPAHarness(Config{})
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	for i := 0; i < 4; i++ {
		h.at(ms(i), kprof.Event{Type: kprof.EvNetRx, Flow: reqFlow, Bytes: 1500})
	}
	h.at(ms(5), kprof.Event{Type: kprof.EvNetTx, Flow: reqFlow.Reverse(), Bytes: 100, Last: true})
	h.at(ms(6), kprof.Event{Type: kprof.EvNetRx, Flow: reqFlow, Bytes: 1500}) // next interaction
	snap := h.lpa.Window().Snapshot()
	if len(snap) != 1 {
		t.Fatalf("records = %d, want 1", len(snap))
	}
	if snap[0].ReqPackets != 4 || snap[0].ReqBytes != 6000 {
		t.Fatalf("request run: %+v", snap[0])
	}
}

func TestLPAResponseWithoutRequestIgnored(t *testing.T) {
	h := newLPAHarness(Config{})
	// First event establishes request direction; a lone "response" run on
	// an unseen flow becomes that flow's request direction instead, so use
	// an explicit two-flow scenario: flow seen first outbound.
	h.at(0, kprof.Event{Type: kprof.EvNetTx, Flow: reqFlow.Reverse(), Bytes: 100})
	// Now inbound on the same canonical flow is the response direction and
	// there is an open interaction from the outbound run.
	h.at(time.Millisecond, kprof.Event{Type: kprof.EvNetRx, Flow: reqFlow, Bytes: 100})
	h.at(2*time.Millisecond, kprof.Event{Type: kprof.EvNetTx, Flow: reqFlow.Reverse(), Bytes: 100})
	h.lpa.FlushOpen()
	// One interaction: outbound request, inbound response... then the
	// second outbound packet closed it.
	snap := h.lpa.Window().Snapshot()
	if len(snap) != 1 {
		t.Fatalf("records = %d, want 1", len(snap))
	}
	if snap[0].Flow != reqFlow.Reverse() {
		t.Fatalf("request direction = %v, want outbound", snap[0].Flow)
	}
}

func TestLPAPerClassGranularity(t *testing.T) {
	h := newLPAHarness(Config{Granularity: PerClass})
	base := time.Duration(0)
	for i := 0; i < 4; i++ {
		base = playInteraction(h, base) + time.Millisecond
	}
	h.lpa.FlushOpen()
	if h.lpa.Window().Len() != 0 {
		t.Fatal("per-class mode should not fill the window")
	}
	aggs := h.lpa.Aggregates()
	agg, ok := aggs["port:80"]
	if !ok {
		t.Fatalf("aggregates = %v", aggs)
	}
	if agg.Count != 4 {
		t.Fatalf("class count = %d, want 4", agg.Count)
	}
	if agg.MeanUser() != 4*time.Millisecond {
		t.Fatalf("MeanUser = %v", agg.MeanUser())
	}
	h.lpa.ResetAggregates()
	if len(h.lpa.Aggregates()) != 0 {
		t.Fatal("ResetAggregates did not clear")
	}
}

func TestLPASwitchGranularityAtRuntime(t *testing.T) {
	h := newLPAHarness(Config{})
	base := playInteraction(h, 0)
	h.at(base+time.Millisecond, kprof.Event{Type: kprof.EvNetRx, Flow: reqFlow, Bytes: 1})
	h.lpa.SetGranularity(PerClass)
	if h.lpa.Granularity() != PerClass {
		t.Fatal("granularity not switched")
	}
	base = playInteraction(h, base+10*time.Millisecond)
	h.at(base+time.Millisecond, kprof.Event{Type: kprof.EvNetRx, Flow: reqFlow, Bytes: 1})
	if h.lpa.Window().Len() != 1 {
		t.Fatalf("window len = %d, want 1 (first interaction only)", h.lpa.Window().Len())
	}
	if aggs := h.lpa.Aggregates(); len(aggs) != 1 {
		t.Fatalf("aggs = %v", aggs)
	}
}

func TestLPAEvictionFillsBuffers(t *testing.T) {
	var drained int
	cfg := Config{
		WindowSize:     2,
		BufferCapacity: 2,
		OnFull: func(cpu int, batch *RecordColumns, release func()) {
			drained += batch.Len()
			release()
		},
	}
	h := newLPAHarness(cfg)
	base := time.Duration(0)
	for i := 0; i < 6; i++ {
		base = playInteraction(h, base) + time.Millisecond
	}
	h.at(base, kprof.Event{Type: kprof.EvNetRx, Flow: reqFlow, Bytes: 1})
	// 6 complete; window keeps 2; 4 evicted; buffer capacity 2 => 2 drains.
	if drained != 4 {
		t.Fatalf("drained = %d, want 4", drained)
	}
}

func TestLPACloseFlushesEverything(t *testing.T) {
	var drained int
	h := newLPAHarness(Config{OnFull: func(cpu int, batch *RecordColumns, release func()) {
		drained += batch.Len()
		release()
	}})
	base := playInteraction(h, 0)
	_ = base
	h.lpa.Close()
	if drained != 1 {
		t.Fatalf("drained = %d after Close, want 1 (open interaction flushed)", drained)
	}
	// Post-close events are not delivered.
	before := h.lpa.Stats().Events
	h.at(time.Second, kprof.Event{Type: kprof.EvNetRx, Flow: reqFlow, Bytes: 1})
	if h.lpa.Stats().Events != before {
		t.Fatal("closed LPA still receives events")
	}
}

func TestLPAInterleavedReadsCountDropped(t *testing.T) {
	h := newLPAHarness(Config{})
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	flow2 := simnet.FlowKey{Src: simnet.Addr{Node: 3, Port: 7}, Dst: srvAddr}
	h.at(ms(0), kprof.Event{Type: kprof.EvNetRx, Flow: reqFlow, Bytes: 100})
	h.at(ms(1), kprof.Event{Type: kprof.EvNetUserRead, Flow: reqFlow, PID: 9, Aux: 0})
	h.at(ms(2), kprof.Event{Type: kprof.EvNetRx, Flow: flow2, Bytes: 100})
	// Same PID reads a second flow before sending: first episode dropped.
	h.at(ms(3), kprof.Event{Type: kprof.EvNetUserRead, Flow: flow2, PID: 9, Aux: 0})
	if st := h.lpa.Stats(); st.DroppedEpisodes != 1 {
		t.Fatalf("DroppedEpisodes = %d, want 1", st.DroppedEpisodes)
	}
}

func TestLPAOnCompleteHook(t *testing.T) {
	var got []*Record
	h := newLPAHarness(Config{OnComplete: func(r *Record) { got = append(got, r) }})
	end := playInteraction(h, 0)
	h.at(end+time.Millisecond, kprof.Event{Type: kprof.EvNetRx, Flow: reqFlow, Bytes: 1})
	if len(got) != 1 || got[0].ServerPID != 9 {
		t.Fatalf("OnComplete got %v", got)
	}
}

// --- End-to-end: LPA over the simulated kernel ---

func TestLPAOverSimulatedKernel(t *testing.T) {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	server, err := simos.NewNode(eng, network, "server", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := simos.NewNode(eng, network, "client", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Connect(server.ID(), client.ID()); err != nil {
		t.Fatal(err)
	}
	lpa := NewLPA(server.Hub(), Config{})

	ssock := server.MustBind(80)
	csock := client.MustBind(4000)
	server.Spawn("httpd", func(p *simos.Process) {
		var loop func()
		loop = func() {
			p.Recv(ssock, func(m *simos.Message) {
				p.Compute(2*time.Millisecond, func() {
					p.Reply(ssock, m, 4000, nil, loop)
				})
			})
		}
		loop()
	})
	client.Spawn("curl", func(p *simos.Process) {
		var loop func(i int)
		loop = func(i int) {
			if i == 0 {
				return
			}
			p.Send(csock, ssock.Addr(), 300, nil, func() {
				p.Recv(csock, func(m *simos.Message) { loop(i - 1) })
			})
		}
		loop(5)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	lpa.FlushOpen()
	snap := lpa.Window().Snapshot()
	if len(snap) != 5 {
		t.Fatalf("interactions = %d, want 5", len(snap))
	}
	for _, r := range snap {
		if r.ServerProc != "httpd" {
			t.Fatalf("server proc = %q", r.ServerProc)
		}
		// 2ms of handler compute must appear as user time.
		if r.UserTime < 1900*time.Microsecond || r.UserTime > 2200*time.Microsecond {
			t.Fatalf("UserTime = %v, want ~2ms", r.UserTime)
		}
		if r.RespBytes < 4000 {
			t.Fatalf("RespBytes = %d, want >= 4000", r.RespBytes)
		}
		if r.RespPackets != simnet.FragmentCount(4000) {
			t.Fatalf("RespPackets = %d", r.RespPackets)
		}
		if r.KernelTime() <= 0 || r.KernelTime() > time.Millisecond {
			t.Fatalf("KernelTime = %v, want small positive", r.KernelTime())
		}
		if r.Residence() < 2*time.Millisecond {
			t.Fatalf("Residence = %v", r.Residence())
		}
	}
}

func TestLPALinearTableMatchesHashed(t *testing.T) {
	run := func(linear bool) []Record {
		h := newLPAHarness(Config{Linear: linear})
		base := time.Duration(0)
		for i := 0; i < 3; i++ {
			base = playInteraction(h, base) + time.Millisecond
		}
		h.lpa.FlushOpen()
		return h.lpa.Window().Snapshot()
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\nhashed: %+v\nlinear: %+v", i, a[i], b[i])
		}
	}
}
