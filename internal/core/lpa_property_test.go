package core

import (
	"testing"
	"testing/quick"
	"time"

	"sysprof/internal/kprof"
	"sysprof/internal/simnet"
)

// TestLPARandomStreamInvariants fuzzes the analyzer with arbitrary event
// sequences: it must never panic, never lose records (completed
// interactions = window + evicted + aggregated), and keep timestamps
// ordered within each record.
func TestLPARandomStreamInvariants(t *testing.T) {
	prop := func(ops []uint16, seed uint8) bool {
		evicted := 0
		hub := kprof.NewHub(2, nil)
		var now time.Duration
		hub = kprof.NewHub(2, func() time.Duration { return now })
		hub.SetPerEventCost(0)
		lpa := NewLPA(hub, Config{
			WindowSize:     4,
			BufferCapacity: 2,
			OnFull: func(cpu int, batch *RecordColumns, release func()) {
				evicted += batch.Len()
				release()
			},
		})
		defer lpa.Close()

		flows := []simnet.FlowKey{
			{Src: simnet.Addr{Node: 1, Port: 10}, Dst: simnet.Addr{Node: 2, Port: 80}},
			{Src: simnet.Addr{Node: 3, Port: 11}, Dst: simnet.Addr{Node: 2, Port: 80}},
			{Src: simnet.Addr{Node: 2, Port: 50}, Dst: simnet.Addr{Node: 4, Port: 90}},
		}
		types := []kprof.EventType{
			kprof.EvNetRx, kprof.EvNetTx, kprof.EvNetDeliver, kprof.EvNetUserRead,
			kprof.EvNetSend, kprof.EvSyscallEnter, kprof.EvSyscallExit,
			kprof.EvBlock, kprof.EvWake, kprof.EvCtxSwitch, kprof.EvDiskIssue,
		}
		for _, op := range ops {
			now += time.Duration(op%7) * time.Microsecond
			flow := flows[int(op>>3)%len(flows)]
			typ := types[int(op)%len(types)]
			dir := flow
			if op&(1<<12) != 0 {
				dir = flow.Reverse()
			}
			hub.Emit(&kprof.Event{
				Type: typ, Flow: dir, PID: int32(op%5) + 1,
				Bytes: int32(op % 2000), Aux: int64(op) * 10,
				Last: op%3 == 0, Proc: "p",
			})
		}
		lpa.FlushOpen()
		lpa.Window().EvictAll()
		lpa.Buffers().FlushAll()

		st := lpa.Stats()
		var aggCount uint64
		for _, a := range lpa.Aggregates() {
			aggCount += a.Count
		}
		// Conservation: every completed interaction went somewhere.
		if uint64(evicted)+aggCount != st.Interactions {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestLPAWellFormedStreamCounts checks exact interaction counting on an
// alternating request/response stream across several flows.
func TestLPAWellFormedStreamCounts(t *testing.T) {
	var now time.Duration
	hub := kprof.NewHub(2, func() time.Duration { return now })
	hub.SetPerEventCost(0)
	lpa := NewLPA(hub, Config{WindowSize: 1 << 12})
	defer lpa.Close()

	const flowsN, pairs = 5, 7
	for f := 0; f < flowsN; f++ {
		flow := simnet.FlowKey{
			Src: simnet.Addr{Node: 1, Port: uint16(100 + f)},
			Dst: simnet.Addr{Node: 2, Port: 80},
		}
		for p := 0; p < pairs; p++ {
			now += time.Millisecond
			hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Flow: flow, Bytes: 100})
			now += time.Millisecond
			hub.Emit(&kprof.Event{Type: kprof.EvNetTx, Flow: flow.Reverse(), Bytes: 200, Last: true})
		}
	}
	lpa.FlushOpen()
	if got := lpa.Stats().Interactions; got != flowsN*pairs {
		t.Fatalf("interactions = %d, want %d", got, flowsN*pairs)
	}
	snap := lpa.Window().Snapshot()
	if len(snap) != flowsN*pairs {
		t.Fatalf("window = %d", len(snap))
	}
	for _, r := range snap {
		if r.End < r.Start {
			t.Fatalf("record %d has End < Start", r.ID)
		}
		if r.ReqPackets != 1 || r.RespPackets != 1 {
			t.Fatalf("record %d packets: %+v", r.ID, r)
		}
	}
}
