package core

import (
	"strings"
	"testing"
	"time"

	"sysprof/internal/ecode"
	"sysprof/internal/kprof"
	"sysprof/internal/simnet"
)

func cpaHub() (*kprof.Hub, *time.Duration) {
	now := new(time.Duration)
	h := kprof.NewHub(3, func() time.Duration { return *now })
	h.SetPerEventCost(0)
	return h, now
}

func TestCPACountsEvents(t *testing.T) {
	hub, _ := cpaHub()
	src := `
		static int big = 0;
		if (ev.type == "net_rx" && ev.bytes > 1000) { big++; }
		return big;
	`
	cpa, err := NewCPA(hub, "bigpackets", src, kprof.MaskOf(kprof.EvNetRx), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cpa.Close()
	for _, b := range []int32{100, 1500, 1501, 900} {
		hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Bytes: b})
	}
	if v, ok := cpa.Static("big"); !ok || v != int64(2) {
		t.Fatalf("big = %v, %v", v, ok)
	}
	runs, errs, _ := cpa.Stats()
	if runs != 4 || errs != 0 {
		t.Fatalf("runs=%d errs=%d", runs, errs)
	}
}

func TestCPAEmit(t *testing.T) {
	hub, _ := cpaHub()
	var channels []string
	var values []ecode.Value
	src := `
		if (ev.bytes > 10) { emit("alerts", ev.bytes); }
		return 0;
	`
	cpa, err := NewCPA(hub, "alerter", src, kprof.MaskOf(kprof.EvNetRx),
		func(ch string, v ecode.Value) {
			channels = append(channels, ch)
			values = append(values, v)
		})
	if err != nil {
		t.Fatal(err)
	}
	defer cpa.Close()
	hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Bytes: 5})
	hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Bytes: 50})
	if len(channels) != 1 || channels[0] != "alerts" || values[0] != int64(50) {
		t.Fatalf("emits: %v %v", channels, values)
	}
}

func TestCPACompileError(t *testing.T) {
	hub, _ := cpaHub()
	if _, err := NewCPA(hub, "bad", "return 1 +;", kprof.MaskAll(), nil); err == nil {
		t.Fatal("compile error not surfaced")
	}
}

func TestCPARuntimeErrorsCounted(t *testing.T) {
	hub, _ := cpaHub()
	// Verifier-clean but faults at runtime when bytes is zero.
	cpa, err := NewCPA(hub, "faulty", "return 1000 / ev.bytes;", kprof.MaskOf(kprof.EvNetRx), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cpa.Close()
	hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Bytes: 0})
	_, errs, lastErr := cpa.Stats()
	if errs != 1 || lastErr == nil {
		t.Fatalf("errs=%d lastErr=%v", errs, lastErr)
	}
}

// TestCPAVerifierGatesInstall: the LPA re-verifies at install time —
// hostile programs never reach the hub, and the error carries the
// verifier's file:line evidence chain ("never trust the frontend").
func TestCPAVerifierGatesInstall(t *testing.T) {
	hub, _ := cpaHub()
	hostile := map[string]string{
		"unbounded": `static int n = 0; while (true) { n++; } return n;`,
		"blocking":  `sleep(10); return 0;`,
		"allocates": `static string s = ""; s += ev.proc; return 0;`,
		"badfield":  `return ev.nonexistent;`,
	}
	for name, src := range hostile {
		cpa, err := NewCPA(hub, name, src, kprof.MaskAll(), nil)
		if err == nil {
			cpa.Close()
			t.Errorf("%s: hostile analyzer installed", name)
			continue
		}
		if !strings.Contains(err.Error(), name+":") {
			t.Errorf("%s: rejection lacks file:line evidence: %v", name, err)
		}
	}
}

// TestCPAVerifyCPA: the frontend-side check shares the node's
// environment, so verdicts agree across the control channel.
func TestCPAVerifyCPA(t *testing.T) {
	v, err := VerifyCPA("ok", `emit("ch", ev.bytes); return 0;`)
	if err != nil || !v.OK {
		t.Fatalf("clean program rejected: %v\n%s", err, v.Render())
	}
	v, err = VerifyCPA("bad", `while (true) { }`)
	if err != nil || v.OK {
		t.Fatalf("unbounded program accepted: %v", err)
	}
	if v.Err() == nil {
		t.Fatal("rejected verdict has nil Err")
	}
}

// TestCPACostExposed: the verifier's worst-case estimate is visible for
// controller status lines.
func TestCPACostExposed(t *testing.T) {
	hub, _ := cpaHub()
	cpa, err := NewCPA(hub, "costly", `
int n = 0;
for (int i = 0; i < 100; i++) { n += i; }
return n;
`, kprof.MaskOf(kprof.EvNetRx), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cpa.Close()
	if cpa.Cost() < 100 {
		t.Errorf("Cost() = %d, want >= 100 for a 100-iteration loop", cpa.Cost())
	}
}

func TestCPAEventFieldSchema(t *testing.T) {
	hub, now := cpaHub()
	*now = 5 * time.Second
	src := `
		static int ok = 0;
		if (ev.type == "net_user_read" && ev.pid == 7 && ev.proc == "srv"
			&& ev.src_port == 99 && ev.dst_port == 80 && ev.aux == 1234
			&& ev.last && ev.node == 3 && ev.time >= 0) {
			ok = 1;
		}
		return ok;
	`
	cpa, err := NewCPA(hub, "schema", src, kprof.MaskOf(kprof.EvNetUserRead), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cpa.Close()
	hub.Emit(&kprof.Event{
		Type: kprof.EvNetUserRead, PID: 7, Proc: "srv",
		Flow: reqFlowWithPorts(99, 80), Aux: 1234, Last: true,
	})
	if v, _ := cpa.Static("ok"); v != int64(1) {
		runs, errs, lastErr := cpa.Stats()
		t.Fatalf("schema check failed: ok=%v runs=%d errs=%d err=%v", v, runs, errs, lastErr)
	}
}

func reqFlowWithPorts(src, dst uint16) (f simnet.FlowKey) {
	f.Src.Port = src
	f.Dst.Port = dst
	return f
}
