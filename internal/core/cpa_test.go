package core

import (
	"testing"
	"time"

	"sysprof/internal/ecode"
	"sysprof/internal/kprof"
	"sysprof/internal/simnet"
)

func cpaHub() (*kprof.Hub, *time.Duration) {
	now := new(time.Duration)
	h := kprof.NewHub(3, func() time.Duration { return *now })
	h.SetPerEventCost(0)
	return h, now
}

func TestCPACountsEvents(t *testing.T) {
	hub, _ := cpaHub()
	src := `
		static int big = 0;
		if (ev.type == "net_rx" && ev.bytes > 1000) { big++; }
		return big;
	`
	cpa, err := NewCPA(hub, "bigpackets", src, kprof.MaskOf(kprof.EvNetRx), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cpa.Close()
	for _, b := range []int32{100, 1500, 1501, 900} {
		hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Bytes: b})
	}
	if v, ok := cpa.Static("big"); !ok || v != int64(2) {
		t.Fatalf("big = %v, %v", v, ok)
	}
	runs, errs, _ := cpa.Stats()
	if runs != 4 || errs != 0 {
		t.Fatalf("runs=%d errs=%d", runs, errs)
	}
}

func TestCPAEmit(t *testing.T) {
	hub, _ := cpaHub()
	var channels []string
	var values []ecode.Value
	src := `
		if (ev.bytes > 10) { emit("alerts", ev.bytes); }
		return 0;
	`
	cpa, err := NewCPA(hub, "alerter", src, kprof.MaskOf(kprof.EvNetRx),
		func(ch string, v ecode.Value) {
			channels = append(channels, ch)
			values = append(values, v)
		})
	if err != nil {
		t.Fatal(err)
	}
	defer cpa.Close()
	hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Bytes: 5})
	hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Bytes: 50})
	if len(channels) != 1 || channels[0] != "alerts" || values[0] != int64(50) {
		t.Fatalf("emits: %v %v", channels, values)
	}
}

func TestCPACompileError(t *testing.T) {
	hub, _ := cpaHub()
	if _, err := NewCPA(hub, "bad", "return 1 +;", kprof.MaskAll(), nil); err == nil {
		t.Fatal("compile error not surfaced")
	}
}

func TestCPARuntimeErrorsCounted(t *testing.T) {
	hub, _ := cpaHub()
	cpa, err := NewCPA(hub, "faulty", "return ev.nonexistent;", kprof.MaskOf(kprof.EvNetRx), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cpa.Close()
	hub.Emit(&kprof.Event{Type: kprof.EvNetRx})
	_, errs, lastErr := cpa.Stats()
	if errs != 1 || lastErr == nil {
		t.Fatalf("errs=%d lastErr=%v", errs, lastErr)
	}
}

func TestCPAEventFieldSchema(t *testing.T) {
	hub, now := cpaHub()
	*now = 5 * time.Second
	src := `
		static int ok = 0;
		if (ev.type == "net_user_read" && ev.pid == 7 && ev.proc == "srv"
			&& ev.src_port == 99 && ev.dst_port == 80 && ev.aux == 1234
			&& ev.last && ev.node == 3 && ev.time >= 0) {
			ok = 1;
		}
		return ok;
	`
	cpa, err := NewCPA(hub, "schema", src, kprof.MaskOf(kprof.EvNetUserRead), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cpa.Close()
	hub.Emit(&kprof.Event{
		Type: kprof.EvNetUserRead, PID: 7, Proc: "srv",
		Flow: reqFlowWithPorts(99, 80), Aux: 1234, Last: true,
	})
	if v, _ := cpa.Static("ok"); v != int64(1) {
		runs, errs, lastErr := cpa.Stats()
		t.Fatalf("schema check failed: ok=%v runs=%d errs=%d err=%v", v, runs, errs, lastErr)
	}
}

func reqFlowWithPorts(src, dst uint16) (f simnet.FlowKey) {
	f.Src.Port = src
	f.Dst.Port = dst
	return f
}
