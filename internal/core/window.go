package core

import "time"

// Window holds the most recent completed interactions for online queries
// ("LPA maintains a window containing the past several interactions and
// the metric values computed for them. Window size can be changed
// dynamically, and window contents are evicted to the dissemination
// daemon after some time.").
type Window struct {
	size    int
	ring    []Record
	head    int // next write position
	n       int // live records
	onEvict func(Record)
}

// NewWindow returns a window of the given size; onEvict receives records
// pushed out (to the dissemination buffers).
func NewWindow(size int, onEvict func(Record)) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{size: size, ring: make([]Record, size), onEvict: onEvict}
}

// Add inserts a record, evicting the oldest when full.
func (w *Window) Add(rec Record) {
	if w.n == w.size {
		oldest := w.ring[w.head]
		if w.onEvict != nil {
			w.onEvict(oldest)
		}
		w.n--
	}
	w.ring[w.head] = rec
	w.head = (w.head + 1) % w.size
	w.n++
}

// Len returns the number of records held.
func (w *Window) Len() int { return w.n }

// Size returns the window capacity.
func (w *Window) Size() int { return w.size }

// Resize changes the capacity at runtime. Shrinking evicts the oldest
// records.
func (w *Window) Resize(size int) {
	if size < 1 {
		size = 1
	}
	recs := w.Snapshot()
	for len(recs) > size {
		if w.onEvict != nil {
			w.onEvict(recs[0])
		}
		recs = recs[1:]
	}
	w.size = size
	w.ring = make([]Record, size)
	w.head = 0
	w.n = 0
	for _, r := range recs {
		w.ring[w.head] = r
		w.head = (w.head + 1) % w.size
		w.n++
	}
}

// EvictOlderThan pushes out records whose End precedes cutoff.
func (w *Window) EvictOlderThan(cutoff time.Duration) {
	recs := w.Snapshot()
	kept := recs[:0]
	for _, r := range recs {
		if r.End < cutoff {
			if w.onEvict != nil {
				w.onEvict(r)
			}
		} else {
			kept = append(kept, r)
		}
	}
	w.head = 0
	w.n = 0
	for i := range w.ring {
		w.ring[i] = Record{}
	}
	for _, r := range kept {
		w.ring[w.head] = r
		w.head = (w.head + 1) % w.size
		w.n++
	}
}

// EvictAll pushes every record out (shutdown path).
func (w *Window) EvictAll() {
	for _, r := range w.Snapshot() {
		if w.onEvict != nil {
			w.onEvict(r)
		}
	}
	w.head = 0
	w.n = 0
}

// Snapshot returns the records oldest-first. The slice is a copy.
func (w *Window) Snapshot() []Record {
	out := make([]Record, 0, w.n)
	start := (w.head - w.n + w.size*2) % w.size
	for i := 0; i < w.n; i++ {
		out = append(out, w.ring[(start+i)%w.size])
	}
	return out
}
