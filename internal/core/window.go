package core

import "time"

// Window holds the most recent completed interactions for online queries
// ("LPA maintains a window containing the past several interactions and
// the metric values computed for them. Window size can be changed
// dynamically, and window contents are evicted to the dissemination
// daemon after some time.").
type Window struct {
	size    int
	ring    []Record
	head    int // next write position
	n       int // live records
	onEvict func(Record)
}

// NewWindow returns a window of the given size; onEvict receives records
// pushed out (to the dissemination buffers).
func NewWindow(size int, onEvict func(Record)) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{size: size, ring: make([]Record, size), onEvict: onEvict}
}

// Add inserts a record, evicting the oldest when full.
func (w *Window) Add(rec Record) {
	if w.n == w.size {
		oldest := w.ring[w.head]
		if w.onEvict != nil {
			w.onEvict(oldest)
		}
		w.n--
	}
	w.ring[w.head] = rec
	w.head = (w.head + 1) % w.size
	w.n++
}

// Len returns the number of records held.
func (w *Window) Len() int { return w.n }

// Size returns the window capacity.
func (w *Window) Size() int { return w.size }

// start returns the ring index of the oldest record.
func (w *Window) start() int {
	return (w.head - w.n + w.size*2) % w.size
}

// Resize changes the capacity at runtime. Shrinking evicts the oldest
// records in place; the ring is reallocated only when the capacity
// actually changes.
func (w *Window) Resize(size int) {
	if size < 1 {
		size = 1
	}
	if size == w.size {
		return
	}
	// Evict oldest records that will not fit, walking the ring in place.
	for w.n > size {
		i := w.start()
		if w.onEvict != nil {
			w.onEvict(w.ring[i])
		}
		w.ring[i] = Record{}
		w.n--
	}
	ring := make([]Record, size)
	old := w.start()
	for i := 0; i < w.n; i++ {
		ring[i] = w.ring[(old+i)%w.size]
	}
	w.size = size
	w.ring = ring
	w.head = w.n % size
}

// EvictOlderThan pushes out records whose End precedes cutoff, compacting
// survivors within the ring — no snapshot copy, zero allocations.
func (w *Window) EvictOlderThan(cutoff time.Duration) {
	start := w.start()
	kept := 0
	for i := 0; i < w.n; i++ {
		idx := (start + i) % w.size
		r := &w.ring[idx]
		if r.End < cutoff {
			if w.onEvict != nil {
				w.onEvict(*r)
			}
			continue
		}
		to := (start + kept) % w.size
		if to != idx {
			w.ring[to] = *r
		}
		kept++
	}
	// Zero the vacated tail so evicted records' strings are released.
	for i := kept; i < w.n; i++ {
		w.ring[(start+i)%w.size] = Record{}
	}
	w.n = kept
	w.head = (start + kept) % w.size
}

// EvictAll pushes every record out (shutdown path), in place.
func (w *Window) EvictAll() {
	start := w.start()
	for i := 0; i < w.n; i++ {
		idx := (start + i) % w.size
		if w.onEvict != nil {
			w.onEvict(w.ring[idx])
		}
		w.ring[idx] = Record{}
	}
	w.head = 0
	w.n = 0
}

// Snapshot returns the records oldest-first. The slice is a copy.
func (w *Window) Snapshot() []Record {
	out := make([]Record, 0, w.n)
	start := (w.head - w.n + w.size*2) % w.size
	for i := 0; i < w.n; i++ {
		out = append(out, w.ring[(start+i)%w.size])
	}
	return out
}
