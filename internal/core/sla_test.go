package core

import (
	"testing"
	"time"

	"sysprof/internal/kprof"
	"sysprof/internal/simnet"
)

func slaRec(class string, residence time.Duration) *Record {
	return &Record{Class: class, Start: 0, End: residence}
}

func TestClientClassifier(t *testing.T) {
	c := ClientClassifier()
	r := &Record{Flow: simnet.FlowKey{Src: simnet.Addr{Node: 7, Port: 99}}}
	if got := c(r); got != "client:7" {
		t.Fatalf("class = %q", got)
	}
}

func TestPerClientAggregation(t *testing.T) {
	var now time.Duration
	hub := kprof.NewHub(2, func() time.Duration { return now })
	hub.SetPerEventCost(0)
	lpa := NewLPA(hub, Config{Granularity: PerClass, Classify: ClientClassifier()})
	defer lpa.Close()
	// Two clients hitting the same server port.
	for client := simnet.NodeID(10); client <= 11; client++ {
		flow := simnet.FlowKey{Src: simnet.Addr{Node: client, Port: 5}, Dst: simnet.Addr{Node: 2, Port: 80}}
		for i := 0; i < 3; i++ {
			now += time.Millisecond
			hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Flow: flow, Bytes: 100})
			now += time.Millisecond
			hub.Emit(&kprof.Event{Type: kprof.EvNetTx, Flow: flow.Reverse(), Bytes: 50, Last: true})
		}
	}
	lpa.FlushOpen()
	aggs := lpa.Aggregates()
	if len(aggs) != 2 {
		t.Fatalf("aggs = %v", aggs)
	}
	if aggs["client:10"].Count != 3 || aggs["client:11"].Count != 3 {
		t.Fatalf("per-client counts: %v", aggs)
	}
}

func TestSLAWatcherToleratesThenBreaches(t *testing.T) {
	var breaches []*Record
	w := NewSLAWatcher([]SLA{
		{Class: "port:80", MaxResidence: 10 * time.Millisecond, Window: 5, MaxViolations: 2},
	}, func(sla SLA, r *Record) { breaches = append(breaches, r) })

	// Two violations inside the window: tolerated.
	w.OnComplete(slaRec("port:80", 50*time.Millisecond))
	w.OnComplete(slaRec("port:80", 50*time.Millisecond))
	if len(breaches) != 0 {
		t.Fatalf("breached within tolerance: %d", len(breaches))
	}
	// Third violation breaches.
	w.OnComplete(slaRec("port:80", 50*time.Millisecond))
	if len(breaches) != 1 {
		t.Fatalf("breaches = %d, want 1", len(breaches))
	}
	// Good records age the violations out of the window.
	for i := 0; i < 5; i++ {
		w.OnComplete(slaRec("port:80", time.Millisecond))
	}
	w.OnComplete(slaRec("port:80", 50*time.Millisecond))
	if len(breaches) != 1 {
		t.Fatalf("violation after recovery breached immediately: %d", len(breaches))
	}
	checked, nb := w.Stats()
	if checked != 9 || nb != 1 {
		t.Fatalf("stats = %d/%d", checked, nb)
	}
}

func TestSLAWatcherClassScoping(t *testing.T) {
	n := 0
	w := NewSLAWatcher([]SLA{
		{Class: "port:80", MaxResidence: time.Millisecond, Window: 1, MaxViolations: 0},
	}, func(SLA, *Record) { n++ })
	w.OnComplete(slaRec("port:443", time.Second)) // other class: ignored
	if n != 0 {
		t.Fatal("breach fired for out-of-scope class")
	}
	w.OnComplete(slaRec("port:80", time.Second))
	if n != 1 {
		t.Fatal("in-scope breach missed")
	}
	// Empty class matches everything.
	all := NewSLAWatcher([]SLA{{MaxResidence: time.Millisecond, Window: 1}}, func(SLA, *Record) { n++ })
	all.OnComplete(slaRec("anything", time.Second))
	if n != 2 {
		t.Fatal("wildcard SLA did not match")
	}
}
