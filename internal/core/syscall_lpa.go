package core

import (
	"sort"
	"time"

	"sysprof/internal/kprof"
)

// SyscallLPA is a second built-in Local Performance Analyzer, tracking
// activities at the paper's finest granularity: "the system-level
// activities triggered by a single system call". For every system call it
// records the in-kernel service latency (enter to exit) per call name and
// per process, with log2 latency histograms — the data an administrator
// needs to see "the amount of time a client's request spends inside the
// OS kernel".
//
// Like the interaction LPA it runs on the kernel fast path and never
// blocks; its state is fixed-size per (name, pid) pair.
type SyscallLPA struct {
	hub *kprof.Hub
	sub *kprof.Subscription

	// open syscall per PID: start time and name.
	open map[int32]openSyscall
	// stats per syscall name.
	byName map[string]*Histogram
	// perPID aggregates total kernel time per process.
	byPID map[int32]*pidSyscalls

	events uint64
}

type openSyscall struct {
	name  string
	start time.Duration
}

type pidSyscalls struct {
	count uint64
	total time.Duration
}

// NewSyscallLPA installs the analyzer on a hub.
func NewSyscallLPA(hub *kprof.Hub) *SyscallLPA {
	a := &SyscallLPA{
		hub:    hub,
		open:   make(map[int32]openSyscall),
		byName: make(map[string]*Histogram),
		byPID:  make(map[int32]*pidSyscalls),
	}
	a.sub = hub.Subscribe(kprof.MaskSyscall(), a.handle)
	return a
}

// Close detaches the analyzer.
func (a *SyscallLPA) Close() { a.sub.Close() }

// Subscription exposes the kprof subscription for controller retuning.
func (a *SyscallLPA) Subscription() *kprof.Subscription { return a.sub }

func (a *SyscallLPA) handle(ev *kprof.Event) {
	a.events++
	switch ev.Type {
	case kprof.EvSyscallEnter:
		a.open[ev.PID] = openSyscall{name: ev.Proc, start: ev.Time}
	case kprof.EvSyscallExit:
		o, ok := a.open[ev.PID]
		if !ok {
			return // attached mid-call
		}
		delete(a.open, ev.PID)
		lat := ev.Time - o.start
		h := a.byName[o.name]
		if h == nil {
			h = &Histogram{}
			a.byName[o.name] = h
		}
		h.Record(lat)
		ps := a.byPID[ev.PID]
		if ps == nil {
			ps = &pidSyscalls{}
			a.byPID[ev.PID] = ps
		}
		ps.count++
		ps.total += lat
	}
}

// SyscallStat is one syscall name's latency summary.
type SyscallStat struct {
	Name  string
	Count uint64
	Total time.Duration
	Mean  time.Duration
	Max   time.Duration
	P99   time.Duration
}

// Stats returns per-name summaries sorted by total time descending.
func (a *SyscallLPA) Stats() []SyscallStat {
	out := make([]SyscallStat, 0, len(a.byName))
	for name, h := range a.byName {
		out = append(out, SyscallStat{
			Name:  name,
			Count: h.Count(),
			Total: h.Sum(),
			Mean:  h.Mean(),
			Max:   h.Max(),
			P99:   h.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Histogram returns the latency distribution of one syscall name (nil if
// never seen).
func (a *SyscallLPA) Histogram(name string) *Histogram { return a.byName[name] }

// PIDKernelTime returns a process's syscall count and cumulative
// in-syscall time.
func (a *SyscallLPA) PIDKernelTime(pid int32) (count uint64, total time.Duration) {
	if ps := a.byPID[pid]; ps != nil {
		return ps.count, ps.total
	}
	return 0, 0
}

// Events returns how many events the analyzer has processed.
func (a *SyscallLPA) Events() uint64 { return a.events }

// Reset clears accumulated statistics (e.g. per measurement epoch).
func (a *SyscallLPA) Reset() {
	a.byName = make(map[string]*Histogram)
	a.byPID = make(map[int32]*pidSyscalls)
}
