// Package core implements the SysProf Local Performance Analyzer (paper
// §2, "Messages and Interactions"). It consumes kprof events on the kernel
// fast path and extracts request/response *interactions* per flow, without
// any application cooperation:
//
//   - a *message* is a maximal run of packets in one direction of a flow
//     with no intervening packet in the opposite direction;
//   - an *interaction* is a message pair in opposite directions
//     (request followed by response).
//
// For each interaction the LPA attributes fine-grain resource usage: the
// inbound protocol-processing time, the time the request sat in the socket
// buffer before the server read it (the paper's dominant kernel-level
// component under load), the syscall time, blocked (I/O wait) time, and the
// user-level time of the handling process, plus packet and byte counts in
// both directions.
//
// Completed interactions enter a sliding window (queryable via the
// controller and /proc interface) and are evicted to per-CPU double
// buffers, which the dissemination daemon drains.
package core

import (
	"time"

	"sysprof/internal/simnet"
)

// Record is one completed interaction with its resource-usage metrics.
// All timestamps are node-local clock values.
type Record struct {
	// ID is the interaction id, unique per LPA.
	ID uint64 `json:"id"`
	// Node is where the interaction was observed.
	Node simnet.NodeID `json:"node"`
	// Flow is the request direction (client -> server as seen here).
	Flow simnet.FlowKey `json:"flow"`
	// Class is the request class assigned by the LPA's classifier.
	Class string `json:"class"`
	// CPU is the processor the interaction's closing event was captured
	// on; records are staged in that CPU's dissemination buffer.
	CPU uint8 `json:"cpu"`

	// Start is the first request packet's NIC arrival (or first transmit
	// for client-side interactions); End is the last response packet's
	// transmit (or arrival).
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`

	ReqPackets  int `json:"reqPackets"`
	ReqBytes    int `json:"reqBytes"`
	RespPackets int `json:"respPackets"`
	RespBytes   int `json:"respBytes"`

	// ProtoTime is inbound protocol-processing time (NIC to socket
	// buffer); TxTime is the outbound counterpart (send syscall to wire).
	ProtoTime time.Duration `json:"protoTime"`
	TxTime    time.Duration `json:"txTime"`
	// BufferWait is how long request data sat in the socket buffer before
	// the server process read it.
	BufferWait time.Duration `json:"bufferWait"`
	// SyscallTime is kernel time consumed by the handling process inside
	// system calls while handling this interaction.
	SyscallTime time.Duration `json:"syscallTime"`
	// UserTime is user-level time of the handling process between reading
	// the request and emitting its next send.
	UserTime time.Duration `json:"userTime"`
	// BlockedTime is time the handling process spent blocked (e.g. disk
	// I/O or a downstream server) while handling this interaction.
	BlockedTime time.Duration `json:"blockedTime"`

	// ServerPID and ServerProc identify the user-level process that
	// consumed the request ("the name ... of the user-level application
	// server that receives packets from the interaction").
	ServerPID  int32  `json:"serverPid"`
	ServerProc string `json:"serverProc"`
	// CtxSwitches counts scheduler switches of the handling process
	// during the interaction.
	CtxSwitches uint64 `json:"ctxSwitches"`
	// DiskOps counts disk operations issued while handling.
	DiskOps uint64 `json:"diskOps"`
}

// KernelTime returns the interaction's kernel-level time at this node:
// protocol processing, socket-buffer residence, syscall service, and
// outbound processing. It deliberately excludes BlockedTime (waiting on a
// remote service or the disk is not CPU time in this kernel).
func (r *Record) KernelTime() time.Duration {
	return r.ProtoTime + r.BufferWait + r.SyscallTime + r.TxTime
}

// Residence returns total time the interaction spent at this node.
func (r *Record) Residence() time.Duration {
	if r.End < r.Start {
		return 0
	}
	return r.End - r.Start
}

// Aggregate summarizes a set of interaction records (used for per-class
// granularity and by the GPA).
type Aggregate struct {
	Class string `json:"class"`
	Count uint64 `json:"count"`

	TotalResidence time.Duration `json:"totalResidence"`
	TotalUser      time.Duration `json:"totalUser"`
	TotalKernel    time.Duration `json:"totalKernel"`
	TotalBlocked   time.Duration `json:"totalBlocked"`
	TotalBufWait   time.Duration `json:"totalBufWait"`

	ReqBytes  uint64 `json:"reqBytes"`
	RespBytes uint64 `json:"respBytes"`

	MaxResidence time.Duration `json:"maxResidence"`
}

// Add folds one record into the aggregate.
func (a *Aggregate) Add(r *Record) {
	a.Count++
	res := r.Residence()
	a.TotalResidence += res
	a.TotalUser += r.UserTime
	a.TotalKernel += r.KernelTime()
	a.TotalBlocked += r.BlockedTime
	a.TotalBufWait += r.BufferWait
	a.ReqBytes += uint64(r.ReqBytes)
	a.RespBytes += uint64(r.RespBytes)
	if res > a.MaxResidence {
		a.MaxResidence = res
	}
}

// Merge folds another aggregate into this one.
func (a *Aggregate) Merge(b *Aggregate) {
	a.Count += b.Count
	a.TotalResidence += b.TotalResidence
	a.TotalUser += b.TotalUser
	a.TotalKernel += b.TotalKernel
	a.TotalBlocked += b.TotalBlocked
	a.TotalBufWait += b.TotalBufWait
	a.ReqBytes += b.ReqBytes
	a.RespBytes += b.RespBytes
	if b.MaxResidence > a.MaxResidence {
		a.MaxResidence = b.MaxResidence
	}
}

// MeanResidence returns the mean per-interaction residence.
func (a *Aggregate) MeanResidence() time.Duration { return a.mean(a.TotalResidence) }

// MeanUser returns the mean per-interaction user-level time.
func (a *Aggregate) MeanUser() time.Duration { return a.mean(a.TotalUser) }

// MeanKernel returns the mean per-interaction kernel-level time.
func (a *Aggregate) MeanKernel() time.Duration { return a.mean(a.TotalKernel) }

// MeanBlocked returns the mean per-interaction blocked time.
func (a *Aggregate) MeanBlocked() time.Duration { return a.mean(a.TotalBlocked) }

func (a *Aggregate) mean(total time.Duration) time.Duration {
	if a.Count == 0 {
		return 0
	}
	return total / time.Duration(a.Count)
}
