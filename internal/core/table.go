package core

import "sysprof/internal/simnet"

// flowState is the per-flow interaction state machine.
type flowState struct {
	key  simnet.FlowKey // canonical key
	hash uint64         // cached Hash(key): probing and rehash never re-hash
	// reqDir is the request direction, fixed by the first packet seen.
	reqDir simnet.FlowKey
	cur    *open // in-progress interaction, nil when idle
	// lastRxAt, lastSendAt, lastTxAt support proto/tx time computation.
	// -1 means "never seen" (0 is a valid simulation timestamp).
	lastRxAt   int64
	lastSendAt int64
	lastTxAt   int64
}

func newFlowState(ck simnet.FlowKey) *flowState {
	return &flowState{key: ck, lastRxAt: -1, lastSendAt: -1, lastTxAt: -1}
}

// open is an interaction under construction.
type open struct {
	rec       Record
	phase     phase
	lastTxAt  int64 // last outbound wire event (becomes End)
	handling  bool
	handlePID int32
}

type phase uint8

const (
	phaseRequest phase = iota + 1
	phaseResponse
)

// FlowTable indexes per-flow state by flow key. Two implementations exist
// so the "efficient event hashing" design choice can be ablated: the
// hashed table the paper uses, and a naive linear scan.
type FlowTable interface {
	// Get returns the state for the flow, creating it if absent.
	Get(key simnet.FlowKey) *flowState
	// Delete removes the flow's state, reporting whether it existed.
	// Must not be called while an Each visit is in progress.
	Delete(key simnet.FlowKey) bool
	// Len returns the number of tracked flows.
	Len() int
	// Each visits every flow state.
	Each(fn func(*flowState))
}

// hashedTable is an open-addressing hash table with linear probing — the
// paper's "efficient event hashing" without per-flow chain allocations.
// Lookups walk a contiguous run of slots from the key's home position, so
// the common hit touches one or two cache lines instead of chasing a
// bucket chain. Deletion uses backward-shift compaction rather than
// tombstones, so a table that expires idle flows never rots: every probe
// run stays exactly as long as its live entries require.
type hashedTable struct {
	slots []*flowState
	mask  uint64
	n     int
}

// maxLoadPercent is the occupancy that triggers a doubling. 75% keeps
// linear-probe runs short (expected O(1)) while wasting at most a third
// of the slot array.
const maxLoadPercent = 75

// NewHashedTable returns a FlowTable with 2^sizeLog2 slots.
func NewHashedTable(sizeLog2 int) FlowTable {
	if sizeLog2 < 2 {
		sizeLog2 = 2
	}
	size := 1 << sizeLog2
	return &hashedTable{slots: make([]*flowState, size), mask: uint64(size - 1)}
}

// Get returns the state for the flow, inserting a fresh one on miss.
//
//sysprof:nonblocking
func (t *hashedTable) Get(key simnet.FlowKey) *flowState {
	ck := key.Canonical()
	h := ck.Hash()
	i := h & t.mask
	for {
		fs := t.slots[i]
		if fs == nil {
			break
		}
		if fs.hash == h && fs.key == ck {
			return fs
		}
		i = (i + 1) & t.mask
	}
	//lint:ignore hotalloc one flowState per new flow, amortized across the flow's lifetime
	fs := newFlowState(ck)
	fs.hash = h
	if (t.n+1)*100 > len(t.slots)*maxLoadPercent {
		t.grow()
		i = h & t.mask
		for t.slots[i] != nil {
			i = (i + 1) & t.mask
		}
	}
	t.slots[i] = fs
	t.n++
	return fs
}

// Delete removes the flow from the table using backward-shift compaction:
// every entry in the probe run after the victim whose home position lies
// at or before the emptied slot moves back into it, so no tombstone is
// left behind and later probe runs stay minimal.
func (t *hashedTable) Delete(key simnet.FlowKey) bool {
	ck := key.Canonical()
	h := ck.Hash()
	i := h & t.mask
	for {
		fs := t.slots[i]
		if fs == nil {
			return false
		}
		if fs.hash == h && fs.key == ck {
			break
		}
		i = (i + 1) & t.mask
	}
	t.n--
	j := i
	for {
		t.slots[i] = nil
		for {
			j = (j + 1) & t.mask
			fs := t.slots[j]
			if fs == nil {
				return true
			}
			// fs may move into the hole iff the hole lies within fs's probe
			// run, i.e. its home position is cyclically outside (i, j].
			home := fs.hash & t.mask
			if ((j - home) & t.mask) >= ((j - i) & t.mask) {
				t.slots[i] = fs
				i = j
				break
			}
		}
	}
}

// grow doubles the slot array and reinserts every entry. Hashes are
// cached in the flowState, so redistribution never re-hashes a key — it
// is a pointer move per flow.
func (t *hashedTable) grow() {
	slots := make([]*flowState, len(t.slots)*2)
	mask := uint64(len(slots) - 1)
	for _, fs := range t.slots {
		if fs == nil {
			continue
		}
		i := fs.hash & mask
		for slots[i] != nil {
			i = (i + 1) & mask
		}
		slots[i] = fs
	}
	t.slots = slots
	t.mask = mask
}

func (t *hashedTable) Len() int { return t.n }

func (t *hashedTable) Each(fn func(*flowState)) {
	for _, fs := range t.slots {
		if fs != nil {
			fn(fs)
		}
	}
}

// linearTable is the ablation baseline: a linear scan over all flows.
type linearTable struct {
	flows []*flowState
}

// NewLinearTable returns the O(n)-lookup flow table used by the hashing
// ablation benchmark.
func NewLinearTable() FlowTable { return &linearTable{} }

func (t *linearTable) Get(key simnet.FlowKey) *flowState {
	ck := key.Canonical()
	for _, fs := range t.flows {
		if fs.key == ck {
			return fs
		}
	}
	fs := newFlowState(ck)
	t.flows = append(t.flows, fs)
	return fs
}

func (t *linearTable) Delete(key simnet.FlowKey) bool {
	ck := key.Canonical()
	for i, fs := range t.flows {
		if fs.key == ck {
			last := len(t.flows) - 1
			t.flows[i] = t.flows[last]
			t.flows[last] = nil
			t.flows = t.flows[:last]
			return true
		}
	}
	return false
}

func (t *linearTable) Len() int { return len(t.flows) }

func (t *linearTable) Each(fn func(*flowState)) {
	for _, fs := range t.flows {
		fn(fs)
	}
}
