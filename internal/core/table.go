package core

import "sysprof/internal/simnet"

// flowState is the per-flow interaction state machine.
type flowState struct {
	key simnet.FlowKey // canonical key
	// reqDir is the request direction, fixed by the first packet seen.
	reqDir simnet.FlowKey
	cur    *open // in-progress interaction, nil when idle
	// lastRxAt, lastSendAt, lastTxAt support proto/tx time computation.
	// -1 means "never seen" (0 is a valid simulation timestamp).
	lastRxAt   int64
	lastSendAt int64
	lastTxAt   int64
}

func newFlowState(ck simnet.FlowKey) *flowState {
	return &flowState{key: ck, lastRxAt: -1, lastSendAt: -1, lastTxAt: -1}
}

// open is an interaction under construction.
type open struct {
	rec       Record
	phase     phase
	lastTxAt  int64 // last outbound wire event (becomes End)
	handling  bool
	handlePID int32
}

type phase uint8

const (
	phaseRequest phase = iota + 1
	phaseResponse
)

// FlowTable indexes per-flow state by flow key. Two implementations exist
// so the "efficient event hashing" design choice can be ablated: the
// hashed table the paper uses, and a naive linear scan.
type FlowTable interface {
	// Get returns the state for the flow, creating it if absent.
	Get(key simnet.FlowKey) *flowState
	// Len returns the number of tracked flows.
	Len() int
	// Each visits every flow state.
	Each(fn func(*flowState))
}

// hashedTable is an open-addressing-free hash table: FlowKey.Hash buckets
// with short chains, as the paper's "efficient event hashing". It doubles
// its bucket array once the load factor passes maxLoadFactor, so chains
// stay short however many flows a run accumulates.
type hashedTable struct {
	buckets [][]*flowState
	mask    uint64
	n       int
}

// maxLoadFactor is the mean chain length that triggers a rehash. Four
// keeps chains a couple of cache lines while rehashing rarely enough to
// amortize to O(1) per insert.
const maxLoadFactor = 4

// NewHashedTable returns a FlowTable with 2^sizeLog2 buckets.
func NewHashedTable(sizeLog2 int) FlowTable {
	if sizeLog2 < 2 {
		sizeLog2 = 2
	}
	size := 1 << sizeLog2
	return &hashedTable{buckets: make([][]*flowState, size), mask: uint64(size - 1)}
}

func (t *hashedTable) Get(key simnet.FlowKey) *flowState {
	ck := key.Canonical()
	b := ck.Hash() & t.mask
	for _, fs := range t.buckets[b] {
		if fs.key == ck {
			return fs
		}
	}
	fs := newFlowState(ck)
	t.buckets[b] = append(t.buckets[b], fs)
	t.n++
	if t.n > maxLoadFactor*len(t.buckets) {
		t.grow()
	}
	return fs
}

// grow doubles the bucket array and redistributes every chain. Each
// flow's canonical-key hash is stable, so redistribution is a
// reslice-and-append pass — no flowState is copied, only pointers move.
func (t *hashedTable) grow() {
	size := len(t.buckets) * 2
	buckets := make([][]*flowState, size)
	mask := uint64(size - 1)
	for _, bucket := range t.buckets {
		for _, fs := range bucket {
			b := fs.key.Hash() & mask
			buckets[b] = append(buckets[b], fs)
		}
	}
	t.buckets = buckets
	t.mask = mask
}

func (t *hashedTable) Len() int { return t.n }

func (t *hashedTable) Each(fn func(*flowState)) {
	for _, bucket := range t.buckets {
		for _, fs := range bucket {
			fn(fs)
		}
	}
}

// linearTable is the ablation baseline: a linear scan over all flows.
type linearTable struct {
	flows []*flowState
}

// NewLinearTable returns the O(n)-lookup flow table used by the hashing
// ablation benchmark.
func NewLinearTable() FlowTable { return &linearTable{} }

func (t *linearTable) Get(key simnet.FlowKey) *flowState {
	ck := key.Canonical()
	for _, fs := range t.flows {
		if fs.key == ck {
			return fs
		}
	}
	fs := newFlowState(ck)
	t.flows = append(t.flows, fs)
	return fs
}

func (t *linearTable) Len() int { return len(t.flows) }

func (t *linearTable) Each(fn func(*flowState)) {
	for _, fs := range t.flows {
		fn(fs)
	}
}
