package core

import (
	"testing"
	"testing/quick"
)

func TestDoubleBufferFillAndDrain(t *testing.T) {
	var batches [][]uint64
	var release func()
	b := NewDoubleBuffer(3, func(batch *RecordColumns, rel func()) {
		ids := make([]uint64, batch.Len())
		copy(ids, batch.IDs)
		batches = append(batches, ids)
		release = rel
	})
	for i := uint64(1); i <= 3; i++ {
		b.Push(Record{ID: i})
	}
	if len(batches) != 1 || len(batches[0]) != 3 {
		t.Fatalf("batches = %v, want one full batch", batches)
	}
	// The standby buffer keeps accepting while the batch is outstanding.
	b.Push(Record{ID: 4})
	if b.Len() != 1 {
		t.Fatalf("active len = %d, want 1", b.Len())
	}
	release()
	b.Push(Record{ID: 5})
	b.Push(Record{ID: 6})
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want second swap after release", len(batches))
	}
	if drops, switches := b.Stats(); drops != 0 || switches != 2 {
		t.Fatalf("stats drops=%d switches=%d", drops, switches)
	}
}

func TestDoubleBufferOverrunDrops(t *testing.T) {
	b := NewDoubleBuffer(2, func(batch *RecordColumns, rel func()) {
		// Daemon never releases: simulates a slow consumer.
	})
	for i := uint64(1); i <= 6; i++ {
		b.Push(Record{ID: i})
	}
	drops, _ := b.Stats()
	// First 2 fill and swap out; every later fill is lost because the
	// first batch was never released.
	if drops != 4 {
		t.Fatalf("drops = %d, want 4", drops)
	}
}

func TestSingleBufferAblationDropsDuringDrain(t *testing.T) {
	var release func()
	b := NewDoubleBuffer(2, func(batch *RecordColumns, rel func()) { release = rel })
	b.SetSingleBuffered(true)
	b.Push(Record{ID: 1})
	b.Push(Record{ID: 2}) // fills, drain starts
	b.Push(Record{ID: 3}) // dropped: no standby in single mode
	b.Push(Record{ID: 4}) // dropped
	if drops, _ := b.Stats(); drops != 2 {
		t.Fatalf("drops = %d, want 2 in single-buffer mode", drops)
	}
	release()
	b.Push(Record{ID: 5})
	if drops, _ := b.Stats(); drops != 2 {
		t.Fatal("push after release should not drop")
	}
}

func TestDoubleBufferExplicitFlush(t *testing.T) {
	var got int
	b := NewDoubleBuffer(100, func(batch *RecordColumns, rel func()) {
		got = batch.Len()
		rel()
	})
	b.Flush() // empty: no callback
	if got != 0 {
		t.Fatal("empty flush invoked callback")
	}
	b.Push(Record{ID: 1})
	b.Flush()
	if got != 1 {
		t.Fatalf("flush delivered %d, want 1", got)
	}
}

func TestDoubleBufferNilCallback(t *testing.T) {
	b := NewDoubleBuffer(1, nil)
	for i := uint64(1); i <= 5; i++ {
		b.Push(Record{ID: i})
	}
	if drops, switches := b.Stats(); drops != 0 || switches != 5 {
		t.Fatalf("nil-callback buffer: drops=%d switches=%d", drops, switches)
	}
}

func TestDoubleBufferSetCapacity(t *testing.T) {
	n := 0
	b := NewDoubleBuffer(100, func(batch *RecordColumns, rel func()) { n++; rel() })
	b.SetCapacity(2)
	b.Push(Record{})
	b.Push(Record{})
	if n != 1 {
		t.Fatalf("swaps = %d after capacity change, want 1", n)
	}
	b.SetCapacity(0) // invalid: ignored
	b.Push(Record{})
	b.Push(Record{})
	if n != 2 {
		t.Fatalf("swaps = %d, want 2", n)
	}
}

func TestBufferSetRouting(t *testing.T) {
	hits := map[int]int{}
	s := NewBufferSet(2, 1, func(cpu int, batch *RecordColumns, rel func()) {
		hits[cpu] += batch.Len()
		rel()
	})
	s.Push(0, Record{})
	s.Push(1, Record{})
	s.Push(7, Record{})  // out of range -> CPU 0
	s.Push(-1, Record{}) // out of range -> CPU 0
	if hits[0] != 3 || hits[1] != 1 {
		t.Fatalf("hits = %v", hits)
	}
	if s.NumCPUs() != 2 {
		t.Fatalf("NumCPUs = %d", s.NumCPUs())
	}
	if s.Buffer(1) == nil || s.Buffer(5) != nil {
		t.Fatal("Buffer accessor wrong")
	}
}

func TestBufferSetFlushAllAndStats(t *testing.T) {
	total := 0
	s := NewBufferSet(3, 10, func(cpu int, batch *RecordColumns, rel func()) {
		total += batch.Len()
		rel()
	})
	for cpu := 0; cpu < 3; cpu++ {
		s.Push(cpu, Record{})
	}
	s.FlushAll()
	if total != 3 {
		t.Fatalf("flushed %d, want 3", total)
	}
	if _, switches := s.Stats(); switches != 3 {
		t.Fatalf("switches = %d", switches)
	}
}

// Property: pushed = delivered + dropped + still-buffered, for any push
// count and capacity, with an immediately-releasing consumer.
func TestDoubleBufferConservationProperty(t *testing.T) {
	prop := func(pushes uint16, capacity uint8) bool {
		delivered := 0
		b := NewDoubleBuffer(int(capacity%32), func(batch *RecordColumns, rel func()) {
			delivered += batch.Len()
			rel()
		})
		n := int(pushes % 2000)
		for i := 0; i < n; i++ {
			b.Push(Record{})
		}
		drops, _ := b.Stats()
		return delivered+int(drops)+b.Len() == n && drops == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
