package core

import (
	"sort"
	"time"

	"sysprof/internal/kprof"
)

// ARMTracker is an analyzer for applications that opt into ARM-style
// explicit instrumentation: messages tagged with an activity id (see
// simos.Process.SendActivity) are attributed exactly, even when several
// requests interleave on one flow — the case the paper's black-box
// interaction extraction cannot split ("multiple requests may interleave,
// in which case domain-specific knowledge and/or ARM support would be
// necessary").
//
// Each distinct tag becomes one Activity accumulating network volume,
// socket-buffer waits, and handling spans across every node hop observed
// by this tracker's hub.
type ARMTracker struct {
	hub *kprof.Hub
	sub *kprof.Subscription

	active map[uint64]*Activity
	done   []Activity
	// maxDone bounds the completed-activity list.
	maxDone int

	events uint64
}

// Activity is the resource usage of one tagged request across its life at
// this node.
type Activity struct {
	Tag   uint64
	Start time.Duration
	End   time.Duration

	Packets    int
	Bytes      int
	BufferWait time.Duration
	// Handled marks that a local process consumed a tagged message;
	// ServerPID/ServerProc identify it.
	Handled    bool
	ServerPID  int32
	ServerProc string
	// Hops counts direction changes (request->response legs observed).
	Hops int

	lastDir uint8 // 1 = inbound, 2 = outbound (internal)
}

// Span returns the activity's observed lifetime at this node.
func (a *Activity) Span() time.Duration {
	if a.End < a.Start {
		return 0
	}
	return a.End - a.Start
}

// NewARMTracker installs the tracker on a hub.
func NewARMTracker(hub *kprof.Hub) *ARMTracker {
	t := &ARMTracker{
		hub:     hub,
		active:  make(map[uint64]*Activity),
		maxDone: 4096,
	}
	t.sub = hub.Subscribe(kprof.MaskNetwork(), t.handle)
	return t
}

// Close detaches the tracker.
func (t *ARMTracker) Close() { t.sub.Close() }

// Subscription exposes the kprof subscription.
func (t *ARMTracker) Subscription() *kprof.Subscription { return t.sub }

func (t *ARMTracker) handle(ev *kprof.Event) {
	if ev.Tag == 0 {
		return
	}
	t.events++
	a := t.active[ev.Tag]
	if a == nil {
		a = &Activity{Tag: ev.Tag, Start: ev.Time}
		t.active[ev.Tag] = a
	}
	a.End = ev.Time
	switch ev.Type {
	case kprof.EvNetRx:
		a.Packets++
		a.Bytes += int(ev.Bytes)
		if a.lastDir != 1 {
			a.Hops++
			a.lastDir = 1
		}
	case kprof.EvNetTx:
		a.Packets++
		a.Bytes += int(ev.Bytes)
		if a.lastDir != 2 {
			a.Hops++
			a.lastDir = 2
		}
	case kprof.EvNetUserRead:
		a.BufferWait += time.Duration(ev.Aux)
		a.Handled = true
		a.ServerPID = ev.PID
		a.ServerProc = ev.Proc
	}
}

// Complete finalizes a tag's activity (called by the application or a
// host component when the request is known to be finished) and returns
// it. The second result is false if the tag was never seen.
func (t *ARMTracker) Complete(tag uint64) (Activity, bool) {
	a := t.active[tag]
	if a == nil {
		return Activity{}, false
	}
	delete(t.active, tag)
	t.done = append(t.done, *a)
	if len(t.done) > t.maxDone {
		t.done = t.done[len(t.done)-t.maxDone:]
	}
	return *a, true
}

// Active returns a snapshot of in-flight activities sorted by tag.
func (t *ARMTracker) Active() []Activity {
	out := make([]Activity, 0, len(t.active))
	for _, a := range t.active {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// Completed returns finalized activities in completion order.
func (t *ARMTracker) Completed() []Activity {
	out := make([]Activity, len(t.done))
	copy(out, t.done)
	return out
}

// Events returns how many tagged events the tracker processed.
func (t *ARMTracker) Events() uint64 { return t.events }
