package core

import (
	"testing"
	"testing/quick"
	"time"
)

func rec(id uint64, end time.Duration) Record {
	return Record{ID: id, End: end}
}

func TestWindowAddAndSnapshot(t *testing.T) {
	var evicted []uint64
	w := NewWindow(3, func(r Record) { evicted = append(evicted, r.ID) })
	for i := uint64(1); i <= 5; i++ {
		w.Add(rec(i, time.Duration(i)))
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	snap := w.Snapshot()
	want := []uint64{3, 4, 5}
	for i, r := range snap {
		if r.ID != want[i] {
			t.Fatalf("snapshot = %v, want IDs %v", snap, want)
		}
	}
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("evicted = %v, want [1 2] oldest-first", evicted)
	}
}

func TestWindowResizeShrinkEvictsOldest(t *testing.T) {
	var evicted []uint64
	w := NewWindow(4, func(r Record) { evicted = append(evicted, r.ID) })
	for i := uint64(1); i <= 4; i++ {
		w.Add(rec(i, 0))
	}
	w.Resize(2)
	if w.Len() != 2 || w.Size() != 2 {
		t.Fatalf("after shrink: len=%d size=%d", w.Len(), w.Size())
	}
	if len(evicted) != 2 || evicted[0] != 1 {
		t.Fatalf("evicted = %v", evicted)
	}
	snap := w.Snapshot()
	if snap[0].ID != 3 || snap[1].ID != 4 {
		t.Fatalf("snapshot after shrink = %v", snap)
	}
}

func TestWindowResizeGrow(t *testing.T) {
	w := NewWindow(2, nil)
	w.Add(rec(1, 0))
	w.Add(rec(2, 0))
	w.Resize(5)
	w.Add(rec(3, 0))
	snap := w.Snapshot()
	if len(snap) != 3 || snap[0].ID != 1 || snap[2].ID != 3 {
		t.Fatalf("snapshot after grow = %v", snap)
	}
}

func TestWindowEvictOlderThan(t *testing.T) {
	var evicted []uint64
	w := NewWindow(10, func(r Record) { evicted = append(evicted, r.ID) })
	for i := uint64(1); i <= 5; i++ {
		w.Add(rec(i, time.Duration(i)*time.Second))
	}
	w.EvictOlderThan(3 * time.Second)
	if len(evicted) != 2 {
		t.Fatalf("evicted %v, want 2 records older than 3s", evicted)
	}
	if w.Len() != 3 {
		t.Fatalf("len = %d after age eviction", w.Len())
	}
}

func TestWindowEvictAll(t *testing.T) {
	n := 0
	w := NewWindow(4, func(Record) { n++ })
	for i := uint64(1); i <= 3; i++ {
		w.Add(rec(i, 0))
	}
	w.EvictAll()
	if n != 3 || w.Len() != 0 {
		t.Fatalf("evicted=%d len=%d", n, w.Len())
	}
}

func TestWindowMinSize(t *testing.T) {
	w := NewWindow(0, nil)
	if w.Size() != 1 {
		t.Fatalf("size = %d, want clamped to 1", w.Size())
	}
	w.Resize(-3)
	if w.Size() != 1 {
		t.Fatal("Resize accepted non-positive size")
	}
}

// Eviction must behave identically when the live region wraps around the
// end of the ring (head < start).
func TestWindowEvictOlderThanWrapped(t *testing.T) {
	var evicted []uint64
	w := NewWindow(5, func(r Record) { evicted = append(evicted, r.ID) })
	// Fill past capacity so the live region wraps: after 8 adds to a
	// 5-slot ring, records 4..8 live at indices 3,4,0,1,2.
	for i := uint64(1); i <= 8; i++ {
		w.Add(rec(i, time.Duration(i)*time.Second))
	}
	evicted = nil
	w.EvictOlderThan(7 * time.Second) // evicts 4,5,6 — keeps 7,8
	if len(evicted) != 3 || evicted[0] != 4 || evicted[2] != 6 {
		t.Fatalf("evicted = %v, want [4 5 6]", evicted)
	}
	snap := w.Snapshot()
	if len(snap) != 2 || snap[0].ID != 7 || snap[1].ID != 8 {
		t.Fatalf("snapshot = %v, want IDs [7 8]", snap)
	}
	// The window keeps working after in-place compaction.
	w.Add(rec(9, 9*time.Second))
	snap = w.Snapshot()
	if len(snap) != 3 || snap[2].ID != 9 {
		t.Fatalf("snapshot after re-add = %v", snap)
	}
}

func TestWindowEvictOlderThanZeroAlloc(t *testing.T) {
	w := NewWindow(256, func(Record) {})
	allocs := testing.AllocsPerRun(100, func() {
		for i := uint64(1); i <= 200; i++ {
			w.Add(Record{ID: i, End: time.Duration(i)})
		}
		w.EvictOlderThan(time.Duration(201))
	})
	if allocs != 0 {
		t.Fatalf("EvictOlderThan allocates %.1f per run, want 0", allocs)
	}
}

func TestWindowResizeSameSizeNoOp(t *testing.T) {
	evictions := 0
	w := NewWindow(4, func(Record) { evictions++ })
	for i := uint64(1); i <= 4; i++ {
		w.Add(rec(i, 0))
	}
	before := &w.ring[0]
	w.Resize(4)
	if &w.ring[0] != before {
		t.Fatal("Resize to the same size reallocated the ring")
	}
	if evictions != 0 || w.Len() != 4 {
		t.Fatalf("same-size Resize evicted %d records, len=%d", evictions, w.Len())
	}
}

// Property: the window never exceeds its size, evictions are oldest-first,
// and every added record is either in the snapshot or was evicted.
func TestWindowConservationProperty(t *testing.T) {
	prop := func(ids []uint8, size uint8) bool {
		s := int(size%16) + 1
		var evicted []uint64
		w := NewWindow(s, func(r Record) { evicted = append(evicted, r.ID) })
		for i, id := range ids {
			_ = id
			w.Add(rec(uint64(i+1), 0))
			if w.Len() > s {
				return false
			}
		}
		total := len(evicted) + w.Len()
		if total != len(ids) {
			return false
		}
		for i := 1; i < len(evicted); i++ {
			if evicted[i] <= evicted[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
