package core

import (
	"strings"
	"testing"
	"time"
)

func TestBreakdownCoversComponents(t *testing.T) {
	r := Record{
		ID: 7, ProtoTime: time.Microsecond, BufferWait: 2 * time.Microsecond,
		UserTime: 3 * time.Microsecond, BlockedTime: 4 * time.Microsecond,
		SyscallTime: 5 * time.Microsecond, TxTime: 6 * time.Microsecond,
		Start: 0, End: 30 * time.Microsecond, ServerProc: "srv",
	}
	steps := r.Breakdown()
	if len(steps) != 6 {
		t.Fatalf("steps = %d", len(steps))
	}
	var sum time.Duration
	labels := map[string]bool{}
	for _, s := range steps {
		sum += s.Latency
		labels[s.Label] = true
	}
	if sum != 21*time.Microsecond {
		t.Fatalf("component sum = %v", sum)
	}
	for _, l := range []string{"L1", "L2", "L3", "L4", "L5", "L6"} {
		if !labels[l] {
			t.Fatalf("missing label %s", l)
		}
	}
	out := RenderBreakdown(&r)
	for _, want := range []string{"interaction 7", "kernel buffer wait", "user-level processing", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Zero record renders without bars or division by zero.
	zero := Record{}
	if out := RenderBreakdown(&zero); strings.Contains(out, "#") {
		t.Fatal("zero record rendered bars")
	}
}

func TestRecordKernelTimeAndResidence(t *testing.T) {
	r := Record{
		ProtoTime: time.Microsecond, BufferWait: 2 * time.Microsecond,
		SyscallTime: 3 * time.Microsecond, TxTime: 4 * time.Microsecond,
		BlockedTime: time.Second, // excluded from kernel time
		Start:       time.Millisecond, End: 3 * time.Millisecond,
	}
	if r.KernelTime() != 10*time.Microsecond {
		t.Fatalf("KernelTime = %v", r.KernelTime())
	}
	if r.Residence() != 2*time.Millisecond {
		t.Fatalf("Residence = %v", r.Residence())
	}
	bad := Record{Start: 5, End: 1}
	if bad.Residence() != 0 {
		t.Fatal("negative residence not clamped")
	}
}

func TestAggregateAddAndMeans(t *testing.T) {
	var a Aggregate
	a.Add(&Record{Start: 0, End: 4 * time.Millisecond, UserTime: time.Millisecond,
		BufferWait: time.Millisecond, ReqBytes: 10, RespBytes: 20})
	a.Add(&Record{Start: 0, End: 2 * time.Millisecond, UserTime: 3 * time.Millisecond})
	if a.Count != 2 || a.MaxResidence != 4*time.Millisecond {
		t.Fatalf("agg = %+v", a)
	}
	if a.MeanResidence() != 3*time.Millisecond || a.MeanUser() != 2*time.Millisecond {
		t.Fatalf("means: %v %v", a.MeanResidence(), a.MeanUser())
	}
	if a.MeanBlocked() != 0 {
		t.Fatalf("MeanBlocked = %v", a.MeanBlocked())
	}
	var empty Aggregate
	if empty.MeanResidence() != 0 || empty.MeanKernel() != 0 {
		t.Fatal("empty aggregate means not zero")
	}
}
