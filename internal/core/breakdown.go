package core

import (
	"fmt"
	"strings"
	"time"
)

// Step is one leg of the paper's Figure 1: the latency incurred at each
// marked point of a request's path through a node.
type Step struct {
	// Label matches the paper's depiction (L1..L6 in Figure 1).
	Label string
	// What the step covers.
	Desc string
	// Latency spent in this step.
	Latency time.Duration
}

// Breakdown decomposes an interaction record into the per-step latencies
// of the paper's Figure 1: inbound protocol processing (L1), kernel
// buffer residence (L2), user-level processing (L3), waits for I/O or
// downstream services (L4), syscall service (L5), and outbound protocol
// processing (L6). The steps sum to less than the total residence when
// the node idles between legs (e.g. waiting for the client's next
// packet).
func (r *Record) Breakdown() []Step {
	return []Step{
		{Label: "L1", Desc: "inbound protocol processing", Latency: r.ProtoTime},
		{Label: "L2", Desc: "kernel buffer wait", Latency: r.BufferWait},
		{Label: "L3", Desc: "user-level processing", Latency: r.UserTime},
		{Label: "L4", Desc: "blocked (I/O / downstream)", Latency: r.BlockedTime},
		{Label: "L5", Desc: "syscall service", Latency: r.SyscallTime},
		{Label: "L6", Desc: "outbound protocol processing", Latency: r.TxTime},
	}
}

// RenderBreakdown prints the Figure-1 style diagnosis for one record,
// with a bar per step scaled to the largest component — what the paper's
// motivating example ("the developer or the system administrator may need
// to know the time spent and resources consumed at each of these steps")
// asks for.
func RenderBreakdown(r *Record) string {
	steps := r.Breakdown()
	var max time.Duration
	for _, s := range steps {
		if s.Latency > max {
			max = s.Latency
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "interaction %d on %s (total residence %v, server %s)\n",
		r.ID, r.Flow, r.Residence().Round(time.Microsecond), r.ServerProc)
	for _, s := range steps {
		bar := ""
		if max > 0 {
			n := int(20 * s.Latency / max)
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(&sb, "  %s %-29s %12v  %s\n",
			s.Label, s.Desc, s.Latency.Round(time.Microsecond), bar)
	}
	return sb.String()
}
