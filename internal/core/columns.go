package core

import (
	"encoding/binary"
	"time"

	"sysprof/internal/simnet"
)

// RecordColumns is the structure-of-arrays form of a Record batch: one
// contiguous slice per field, in Record declaration order. The batch path
// (dissemination buffers → pbio columnar frames → pub-sub partitioning →
// GPA ingest) moves these instead of []Record so shard routing, filtering,
// and correlation hashing sweep a single cache-linear column instead of
// striding across ~240-byte structs.
//
// The Flow column keeps the four-tuple packed as one 8-byte FlowKey per
// row (the shard-hash sweep wants exactly that); on the wire it expands
// into the four u16 columns of the flat record format, so columnar and
// row frames stay byte-compatible field for field.
type RecordColumns struct {
	IDs     []uint64
	Nodes   []simnet.NodeID
	Flows   []simnet.FlowKey
	Classes []string
	CPUs    []uint8

	Starts []time.Duration
	Ends   []time.Duration

	ReqPackets  []int
	ReqBytes    []int
	RespPackets []int
	RespBytes   []int

	ProtoTimes   []time.Duration
	TxTimes      []time.Duration
	BufferWaits  []time.Duration
	SyscallTimes []time.Duration
	UserTimes    []time.Duration
	BlockedTimes []time.Duration

	ServerPIDs  []int32
	ServerProcs []string
	CtxSwitches []uint64
	DiskOps     []uint64
}

// RecordWireFields is the number of wire fields a record flattens into
// (the Flow column expands to four u16 fields on the wire). It must match
// the "sysprof.interaction" format's field count.
const RecordWireFields = 24

// NewRecordColumns returns a columnar batch with every column
// preallocated to the given row capacity.
func NewRecordColumns(capacity int) *RecordColumns {
	c := &RecordColumns{}
	c.Grow(capacity)
	return c
}

// Len returns the number of rows.
func (c *RecordColumns) Len() int { return len(c.IDs) }

// Reset truncates every column to zero rows, keeping capacity. Like a
// recycled []Record buffer, previously-held strings stay reachable until
// their slots are overwritten by new rows.
func (c *RecordColumns) Reset() {
	c.IDs = c.IDs[:0]
	c.Nodes = c.Nodes[:0]
	c.Flows = c.Flows[:0]
	c.Classes = c.Classes[:0]
	c.CPUs = c.CPUs[:0]
	c.Starts = c.Starts[:0]
	c.Ends = c.Ends[:0]
	c.ReqPackets = c.ReqPackets[:0]
	c.ReqBytes = c.ReqBytes[:0]
	c.RespPackets = c.RespPackets[:0]
	c.RespBytes = c.RespBytes[:0]
	c.ProtoTimes = c.ProtoTimes[:0]
	c.TxTimes = c.TxTimes[:0]
	c.BufferWaits = c.BufferWaits[:0]
	c.SyscallTimes = c.SyscallTimes[:0]
	c.UserTimes = c.UserTimes[:0]
	c.BlockedTimes = c.BlockedTimes[:0]
	c.ServerPIDs = c.ServerPIDs[:0]
	c.ServerProcs = c.ServerProcs[:0]
	c.CtxSwitches = c.CtxSwitches[:0]
	c.DiskOps = c.DiskOps[:0]
}

// Grow ensures capacity for n more rows in every column.
func (c *RecordColumns) Grow(n int) {
	if n <= 0 {
		return
	}
	c.IDs = growSlice(c.IDs, n)
	c.Nodes = growSlice(c.Nodes, n)
	c.Flows = growSlice(c.Flows, n)
	c.Classes = growSlice(c.Classes, n)
	c.CPUs = growSlice(c.CPUs, n)
	c.Starts = growSlice(c.Starts, n)
	c.Ends = growSlice(c.Ends, n)
	c.ReqPackets = growSlice(c.ReqPackets, n)
	c.ReqBytes = growSlice(c.ReqBytes, n)
	c.RespPackets = growSlice(c.RespPackets, n)
	c.RespBytes = growSlice(c.RespBytes, n)
	c.ProtoTimes = growSlice(c.ProtoTimes, n)
	c.TxTimes = growSlice(c.TxTimes, n)
	c.BufferWaits = growSlice(c.BufferWaits, n)
	c.SyscallTimes = growSlice(c.SyscallTimes, n)
	c.UserTimes = growSlice(c.UserTimes, n)
	c.BlockedTimes = growSlice(c.BlockedTimes, n)
	c.ServerPIDs = growSlice(c.ServerPIDs, n)
	c.ServerProcs = growSlice(c.ServerProcs, n)
	c.CtxSwitches = growSlice(c.CtxSwitches, n)
	c.DiskOps = growSlice(c.DiskOps, n)
}

func growSlice[T any](s []T, n int) []T {
	if cap(s)-len(s) >= n {
		return s
	}
	out := make([]T, len(s), len(s)+n)
	copy(out, s)
	return out
}

// Append adds one record as a new row. In steady state the columns are
// preallocated to the buffer capacity, so the row is written in place;
// only an explicit capacity raise (doubling, off the steady-state path)
// allocates.
//
//sysprof:nonblocking
//sysprof:noalloc
func (c *RecordColumns) Append(r *Record) {
	i := len(c.IDs)
	if i == cap(c.IDs) {
		grow := i
		if grow < 64 {
			grow = 64
		}
		//lint:ignore hotalloc capacity raise: doubles the columns when the preallocated buffer capacity is exceeded, never on the steady-state path
		c.Grow(grow)
	}
	c.IDs = c.IDs[:i+1]
	c.IDs[i] = r.ID
	c.Nodes = c.Nodes[:i+1]
	c.Nodes[i] = r.Node
	c.Flows = c.Flows[:i+1]
	c.Flows[i] = r.Flow
	c.Classes = c.Classes[:i+1]
	c.Classes[i] = r.Class
	c.CPUs = c.CPUs[:i+1]
	c.CPUs[i] = r.CPU
	c.Starts = c.Starts[:i+1]
	c.Starts[i] = r.Start
	c.Ends = c.Ends[:i+1]
	c.Ends[i] = r.End
	c.ReqPackets = c.ReqPackets[:i+1]
	c.ReqPackets[i] = r.ReqPackets
	c.ReqBytes = c.ReqBytes[:i+1]
	c.ReqBytes[i] = r.ReqBytes
	c.RespPackets = c.RespPackets[:i+1]
	c.RespPackets[i] = r.RespPackets
	c.RespBytes = c.RespBytes[:i+1]
	c.RespBytes[i] = r.RespBytes
	c.ProtoTimes = c.ProtoTimes[:i+1]
	c.ProtoTimes[i] = r.ProtoTime
	c.TxTimes = c.TxTimes[:i+1]
	c.TxTimes[i] = r.TxTime
	c.BufferWaits = c.BufferWaits[:i+1]
	c.BufferWaits[i] = r.BufferWait
	c.SyscallTimes = c.SyscallTimes[:i+1]
	c.SyscallTimes[i] = r.SyscallTime
	c.UserTimes = c.UserTimes[:i+1]
	c.UserTimes[i] = r.UserTime
	c.BlockedTimes = c.BlockedTimes[:i+1]
	c.BlockedTimes[i] = r.BlockedTime
	c.ServerPIDs = c.ServerPIDs[:i+1]
	c.ServerPIDs[i] = r.ServerPID
	c.ServerProcs = c.ServerProcs[:i+1]
	c.ServerProcs[i] = r.ServerProc
	c.CtxSwitches = c.CtxSwitches[:i+1]
	c.CtxSwitches[i] = r.CtxSwitches
	c.DiskOps = c.DiskOps[:i+1]
	c.DiskOps[i] = r.DiskOps
}

// AppendColumns appends every row of src. Growth routes through Grow,
// so column capacities stay uniform (the invariant Append's in-place
// fast path relies on).
func (c *RecordColumns) AppendColumns(src *RecordColumns) {
	if n := src.Len(); cap(c.IDs)-len(c.IDs) < n {
		c.Grow(n)
	}
	c.IDs = append(c.IDs, src.IDs...)
	c.Nodes = append(c.Nodes, src.Nodes...)
	c.Flows = append(c.Flows, src.Flows...)
	c.Classes = append(c.Classes, src.Classes...)
	c.CPUs = append(c.CPUs, src.CPUs...)
	c.Starts = append(c.Starts, src.Starts...)
	c.Ends = append(c.Ends, src.Ends...)
	c.ReqPackets = append(c.ReqPackets, src.ReqPackets...)
	c.ReqBytes = append(c.ReqBytes, src.ReqBytes...)
	c.RespPackets = append(c.RespPackets, src.RespPackets...)
	c.RespBytes = append(c.RespBytes, src.RespBytes...)
	c.ProtoTimes = append(c.ProtoTimes, src.ProtoTimes...)
	c.TxTimes = append(c.TxTimes, src.TxTimes...)
	c.BufferWaits = append(c.BufferWaits, src.BufferWaits...)
	c.SyscallTimes = append(c.SyscallTimes, src.SyscallTimes...)
	c.UserTimes = append(c.UserTimes, src.UserTimes...)
	c.BlockedTimes = append(c.BlockedTimes, src.BlockedTimes...)
	c.ServerPIDs = append(c.ServerPIDs, src.ServerPIDs...)
	c.ServerProcs = append(c.ServerProcs, src.ServerProcs...)
	c.CtxSwitches = append(c.CtxSwitches, src.CtxSwitches...)
	c.DiskOps = append(c.DiskOps, src.DiskOps...)
}

// AppendRowOf appends row j of src — the column-sweep partitioning
// primitive (shard routing and filtering build sub-batches with it).
// Like Append, the steady-state path writes in place: partition
// sub-batches are pool-recycled at batch capacity, so growth happens
// on first use only.
//
//sysprof:nonblocking
//sysprof:noalloc
func (c *RecordColumns) AppendRowOf(src *RecordColumns, j int) {
	i := len(c.IDs)
	if i == cap(c.IDs) {
		grow := i
		if grow < 64 {
			grow = 64
		}
		//lint:ignore hotalloc capacity raise on a recycled sub-batch's first fill; never on the steady-state path
		c.Grow(grow)
	}
	c.IDs = c.IDs[:i+1]
	c.IDs[i] = src.IDs[j]
	c.Nodes = c.Nodes[:i+1]
	c.Nodes[i] = src.Nodes[j]
	c.Flows = c.Flows[:i+1]
	c.Flows[i] = src.Flows[j]
	c.Classes = c.Classes[:i+1]
	c.Classes[i] = src.Classes[j]
	c.CPUs = c.CPUs[:i+1]
	c.CPUs[i] = src.CPUs[j]
	c.Starts = c.Starts[:i+1]
	c.Starts[i] = src.Starts[j]
	c.Ends = c.Ends[:i+1]
	c.Ends[i] = src.Ends[j]
	c.ReqPackets = c.ReqPackets[:i+1]
	c.ReqPackets[i] = src.ReqPackets[j]
	c.ReqBytes = c.ReqBytes[:i+1]
	c.ReqBytes[i] = src.ReqBytes[j]
	c.RespPackets = c.RespPackets[:i+1]
	c.RespPackets[i] = src.RespPackets[j]
	c.RespBytes = c.RespBytes[:i+1]
	c.RespBytes[i] = src.RespBytes[j]
	c.ProtoTimes = c.ProtoTimes[:i+1]
	c.ProtoTimes[i] = src.ProtoTimes[j]
	c.TxTimes = c.TxTimes[:i+1]
	c.TxTimes[i] = src.TxTimes[j]
	c.BufferWaits = c.BufferWaits[:i+1]
	c.BufferWaits[i] = src.BufferWaits[j]
	c.SyscallTimes = c.SyscallTimes[:i+1]
	c.SyscallTimes[i] = src.SyscallTimes[j]
	c.UserTimes = c.UserTimes[:i+1]
	c.UserTimes[i] = src.UserTimes[j]
	c.BlockedTimes = c.BlockedTimes[:i+1]
	c.BlockedTimes[i] = src.BlockedTimes[j]
	c.ServerPIDs = c.ServerPIDs[:i+1]
	c.ServerPIDs[i] = src.ServerPIDs[j]
	c.ServerProcs = c.ServerProcs[:i+1]
	c.ServerProcs[i] = src.ServerProcs[j]
	c.CtxSwitches = c.CtxSwitches[:i+1]
	c.CtxSwitches[i] = src.CtxSwitches[j]
	c.DiskOps = c.DiskOps[:i+1]
	c.DiskOps[i] = src.DiskOps[j]
}

// Row materializes row i as a Record. No allocation: scalar columns are
// copied, string columns share their backing bytes.
//
//sysprof:nonblocking
//sysprof:noalloc
func (c *RecordColumns) Row(i int) Record {
	return Record{
		ID: c.IDs[i], Node: c.Nodes[i], Flow: c.Flows[i],
		Class: c.Classes[i], CPU: c.CPUs[i],
		Start: c.Starts[i], End: c.Ends[i],
		ReqPackets: c.ReqPackets[i], ReqBytes: c.ReqBytes[i],
		RespPackets: c.RespPackets[i], RespBytes: c.RespBytes[i],
		ProtoTime: c.ProtoTimes[i], TxTime: c.TxTimes[i],
		BufferWait: c.BufferWaits[i], SyscallTime: c.SyscallTimes[i],
		UserTime: c.UserTimes[i], BlockedTime: c.BlockedTimes[i],
		ServerPID: c.ServerPIDs[i], ServerProc: c.ServerProcs[i],
		CtxSwitches: c.CtxSwitches[i], DiskOps: c.DiskOps[i],
	}
}

// CopyRow writes row i into dst, overwriting every field — the in-place
// form of Row for consumers that already hold the destination slot (the
// GPA's vectorized correlation fills matched pairs directly into the
// correlated history, skipping the stack temporaries a Row round trip
// would copy through).
//
//sysprof:nonblocking
//sysprof:noalloc
func (c *RecordColumns) CopyRow(dst *Record, i int) {
	dst.ID = c.IDs[i]
	dst.Node = c.Nodes[i]
	dst.Flow = c.Flows[i]
	dst.Class = c.Classes[i]
	dst.CPU = c.CPUs[i]
	dst.Start = c.Starts[i]
	dst.End = c.Ends[i]
	dst.ReqPackets = c.ReqPackets[i]
	dst.ReqBytes = c.ReqBytes[i]
	dst.RespPackets = c.RespPackets[i]
	dst.RespBytes = c.RespBytes[i]
	dst.ProtoTime = c.ProtoTimes[i]
	dst.TxTime = c.TxTimes[i]
	dst.BufferWait = c.BufferWaits[i]
	dst.SyscallTime = c.SyscallTimes[i]
	dst.UserTime = c.UserTimes[i]
	dst.BlockedTime = c.BlockedTimes[i]
	dst.ServerPID = c.ServerPIDs[i]
	dst.ServerProc = c.ServerProcs[i]
	dst.CtxSwitches = c.CtxSwitches[i]
	dst.DiskOps = c.DiskOps[i]
}

// AppendTo materializes every row onto dst and returns the extended
// slice — the bridge back to row-oriented consumers.
func (c *RecordColumns) AppendTo(dst []Record) []Record {
	if n := c.Len(); cap(dst)-len(dst) < n {
		grown := make([]Record, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	for i := 0; i < c.Len(); i++ {
		dst = append(dst, c.Row(i))
	}
	return dst
}

// --- wire encoding ---
//
// The helpers below emit the exact bytes the flat record format puts on
// the wire (little-endian, strings length-prefixed with u32), so pbio can
// build columnar and row frames from a RecordColumns without reflection.
// Field indices follow Record's flattened declaration order; see
// RecordWireFields.

func appendWireString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// AppendColumn appends wire field `field`'s value for every row — one
// contiguous column sweep.
func (c *RecordColumns) AppendColumn(buf []byte, field int) []byte {
	n := c.Len()
	switch field {
	case 0: // ID u64
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint64(buf, c.IDs[i])
		}
	case 1: // Node u16
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(c.Nodes[i]))
		}
	case 2: // Flow.Src.Node u16
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(c.Flows[i].Src.Node))
		}
	case 3: // Flow.Src.Port u16
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint16(buf, c.Flows[i].Src.Port)
		}
	case 4: // Flow.Dst.Node u16
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(c.Flows[i].Dst.Node))
		}
	case 5: // Flow.Dst.Port u16
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint16(buf, c.Flows[i].Dst.Port)
		}
	case 6: // Class string
		for i := 0; i < n; i++ {
			buf = appendWireString(buf, c.Classes[i])
		}
	case 7: // CPU u8
		buf = append(buf, c.CPUs...)
	case 8: // Start duration
		buf = appendDurColumn(buf, c.Starts)
	case 9: // End duration
		buf = appendDurColumn(buf, c.Ends)
	case 10: // ReqPackets i64
		buf = appendIntColumn(buf, c.ReqPackets)
	case 11: // ReqBytes i64
		buf = appendIntColumn(buf, c.ReqBytes)
	case 12: // RespPackets i64
		buf = appendIntColumn(buf, c.RespPackets)
	case 13: // RespBytes i64
		buf = appendIntColumn(buf, c.RespBytes)
	case 14: // ProtoTime duration
		buf = appendDurColumn(buf, c.ProtoTimes)
	case 15: // TxTime duration
		buf = appendDurColumn(buf, c.TxTimes)
	case 16: // BufferWait duration
		buf = appendDurColumn(buf, c.BufferWaits)
	case 17: // SyscallTime duration
		buf = appendDurColumn(buf, c.SyscallTimes)
	case 18: // UserTime duration
		buf = appendDurColumn(buf, c.UserTimes)
	case 19: // BlockedTime duration
		buf = appendDurColumn(buf, c.BlockedTimes)
	case 20: // ServerPID i32
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(c.ServerPIDs[i]))
		}
	case 21: // ServerProc string
		for i := 0; i < n; i++ {
			buf = appendWireString(buf, c.ServerProcs[i])
		}
	case 22: // CtxSwitches u64
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint64(buf, c.CtxSwitches[i])
		}
	case 23: // DiskOps u64
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint64(buf, c.DiskOps[i])
		}
	}
	return buf
}

func appendDurColumn(buf []byte, col []time.Duration) []byte {
	for _, v := range col {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

func appendIntColumn(buf []byte, col []int) []byte {
	for _, v := range col {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
	}
	return buf
}

// AppendRow appends row i's wire fields in format order — the building
// block of the row-frame fallback for subscribers that predate columnar
// frames. The bytes are identical to encoding Row(i) through the cached
// record plan.
func (c *RecordColumns) AppendRow(buf []byte, i int) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, c.IDs[i])
	buf = binary.LittleEndian.AppendUint16(buf, uint16(c.Nodes[i]))
	f := &c.Flows[i]
	buf = binary.LittleEndian.AppendUint16(buf, uint16(f.Src.Node))
	buf = binary.LittleEndian.AppendUint16(buf, f.Src.Port)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(f.Dst.Node))
	buf = binary.LittleEndian.AppendUint16(buf, f.Dst.Port)
	buf = appendWireString(buf, c.Classes[i])
	buf = append(buf, c.CPUs[i])
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Starts[i]))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Ends[i]))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(c.ReqPackets[i])))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(c.ReqBytes[i])))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(c.RespPackets[i])))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(c.RespBytes[i])))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.ProtoTimes[i]))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.TxTimes[i]))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.BufferWaits[i]))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.SyscallTimes[i]))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.UserTimes[i]))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.BlockedTimes[i]))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.ServerPIDs[i]))
	buf = appendWireString(buf, c.ServerProcs[i])
	buf = binary.LittleEndian.AppendUint64(buf, c.CtxSwitches[i])
	buf = binary.LittleEndian.AppendUint64(buf, c.DiskOps[i])
	return buf
}

// NumWireFields implements the pbio column-batch contract.
func (c *RecordColumns) NumWireFields() int { return RecordWireFields }

// Rows implements the pbio column-batch contract.
func (c *RecordColumns) Rows() int { return c.Len() }
