package dissem

import (
	"testing"
	"time"

	"sysprof/internal/core"
	"sysprof/internal/pbio"
	"sysprof/internal/pubsub"
)

func TestCompileFilterSelects(t *testing.T) {
	f, err := CompileFilter(`return rec.class == "port:80" && rec.buffer_wait_ns > 50000;`)
	if err != nil {
		t.Fatal(err)
	}
	hot := sampleRecord(1) // class port:80, BufferWait 100µs
	cold := sampleRecord(2)
	cold.BufferWait = time.Microsecond
	other := sampleRecord(3)
	other.Class = "port:443"

	// The wire shape (remote consumers re-filtering decoded records)...
	if !f(ToWire(&hot)) {
		t.Fatal("matching record rejected")
	}
	if f(ToWire(&cold)) {
		t.Fatal("low-wait record accepted")
	}
	if f(ToWire(&other)) {
		t.Fatal("other-class record accepted")
	}
	// ...and the core.Record shape the daemon now publishes directly,
	// by value and by pointer.
	if !f(hot) || !f(&hot) {
		t.Fatal("matching core.Record rejected")
	}
	if f(cold) || f(&other) {
		t.Fatal("non-matching core.Record accepted")
	}
}

func TestCompileFilterFailsClosed(t *testing.T) {
	// Non-bool result and unknown field both suppress delivery.
	f, err := CompileFilter(`return 42;`)
	if err != nil {
		t.Fatal(err)
	}
	r := sampleRecord(1)
	if f(ToWire(&r)) {
		t.Fatal("non-bool filter result delivered")
	}
	f2, err := CompileFilter(`return rec.nonexistent > 0;`)
	if err != nil {
		t.Fatal(err)
	}
	if f2(ToWire(&r)) {
		t.Fatal("erroring filter delivered")
	}
	if f2("not a record") {
		t.Fatal("non-record value delivered")
	}
	if _, err := CompileFilter("syntax error"); err == nil {
		t.Fatal("bad source compiled")
	}
}

func TestFilterFieldSchemaComplete(t *testing.T) {
	// Every documented field must resolve.
	fields := []string{
		"id", "node", "class", "src_node", "src_port", "dst_node", "dst_port",
		"start_ns", "end_ns", "residence_ns", "req_packets", "req_bytes",
		"resp_packets", "resp_bytes", "proto_ns", "tx_ns", "buffer_wait_ns",
		"syscall_ns", "user_ns", "blocked_ns", "server_pid", "server_proc",
		"ctx_switches", "disk_ops",
	}
	r := sampleRecord(1)
	w := ToWire(&r)
	rec := recRecord{w: &w}
	for _, name := range fields {
		if _, ok := rec.Field(name); !ok {
			t.Fatalf("field %q missing", name)
		}
	}
	if _, ok := rec.Field("bogus"); ok {
		t.Fatal("unknown field resolved")
	}
}

func TestFilteredSubscriptionEndToEnd(t *testing.T) {
	reg := pbio.NewRegistry()
	if err := RegisterFormats(reg); err != nil {
		t.Fatal(err)
	}
	broker := pubsub.NewBroker(reg)
	defer broker.Close()

	filter, err := CompileFilter(`return rec.user_ns > 100000;`) // > 100µs
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	broker.Subscribe(ChannelInteractions, func(rec any) {
		if w, ok := rec.(WireRecord); ok {
			got = append(got, w.ID)
		}
	}, pubsub.WithFilter(filter))

	slow := sampleRecord(1) // UserTime 200µs
	fast := sampleRecord(2)
	fast.UserTime = 10 * time.Microsecond
	_ = broker.Publish(ChannelInteractions, ToWire(&slow))
	_ = broker.Publish(ChannelInteractions, ToWire(&fast))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("delivered = %v, want [1]", got)
	}
}

func TestFilteredSubscriptionBatch(t *testing.T) {
	// A compiled filter applies per element inside a published batch; the
	// subscriber receives the surviving records as a sub-batch.
	reg := pbio.NewRegistry()
	if err := RegisterFormats(reg); err != nil {
		t.Fatal(err)
	}
	broker := pubsub.NewBroker(reg)
	defer broker.Close()

	filter, err := CompileFilter(`return rec.user_ns > 100000;`)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	broker.Subscribe(ChannelInteractions, func(rec any) {
		for _, r := range rec.([]core.Record) {
			got = append(got, r.ID)
		}
	}, pubsub.WithFilter(filter))

	slow1 := sampleRecord(1)
	fast := sampleRecord(2)
	fast.UserTime = 10 * time.Microsecond
	slow2 := sampleRecord(3)
	batch := []core.Record{slow1, fast, slow2}
	if err := broker.PublishBatch(ChannelInteractions, batch); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("delivered = %v, want [1 3]", got)
	}
}
