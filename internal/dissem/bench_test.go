package dissem

import (
	"io"
	"reflect"
	"sync"
	"testing"

	"sysprof/internal/core"
	"sysprof/internal/pbio"
)

// BenchmarkFlushEncode compares the daemon flush path's two encode
// strategies for a drained batch of core.Records:
//
//   - baseline-towire: the pre-plan path — flatten every record into a
//     pooled []WireRecord, box it, and run it through Encoder.EncodeSlice
//     (what publishBatch + the broker's per-connection encoder used to do
//     per publish).
//   - direct-plan: the current path — the cached encode plan appends the
//     batch frame straight from the []core.Record into a reused wire
//     buffer; the batch is boxed once at subscription setup, mirroring
//     the broker encoding one shared frame for all subscribers.
//
// The acceptance bar for the async fan-out work is ≥25% fewer allocs/op
// on direct-plan.
func BenchmarkFlushEncode(b *testing.B) {
	const batchSize = 64
	batch := make([]core.Record, batchSize)
	for i := range batch {
		batch[i] = sampleRecord(uint64(i + 1))
	}

	b.Run("baseline-towire", func(b *testing.B) {
		reg := pbio.NewRegistry()
		if err := RegisterFormats(reg); err != nil {
			b.Fatal(err)
		}
		enc := pbio.NewEncoder(io.Discard, reg)
		pool := sync.Pool{New: func() any { return new([]WireRecord) }}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wp := pool.Get().(*[]WireRecord)
			wires := (*wp)[:0]
			for j := range batch {
				wires = append(wires, ToWire(&batch[j]))
			}
			if err := enc.EncodeSlice(wires); err != nil {
				b.Fatal(err)
			}
			*wp = wires[:0]
			pool.Put(wp)
		}
	})

	b.Run("direct-plan", func(b *testing.B) {
		reg := pbio.NewRegistry()
		if err := RegisterFormats(reg); err != nil {
			b.Fatal(err)
		}
		plan := reg.PlanFor(reflect.TypeOf(core.Record{}))
		if plan == nil {
			b.Fatal("no plan bound for core.Record")
		}
		boxed := any(batch)
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, _, err := plan.AppendBatchFrame(buf[:0], boxed)
			if err != nil {
				b.Fatal(err)
			}
			buf = out
		}
	})
}

// BenchmarkColumnsEncode measures the columnar wire encoders on a
// representative shard-link batch: the plain 0x04 columnar frame
// against the per-column compressed 0x05 frame WAN links negotiate.
// Compression trades encode CPU for wire bytes; this pins how much.
func BenchmarkColumnsEncode(b *testing.B) {
	cols := shardLinkBatch(512)
	reg := pbio.NewRegistry()
	if err := RegisterFormats(reg); err != nil {
		b.Fatal(err)
	}
	plan := reg.PlanFor(reflect.TypeOf(core.Record{}))
	if plan == nil {
		b.Fatal("no plan bound for core.Record")
	}
	b.Run("plain", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, _, err := plan.AppendColumnsFrame(buf[:0], cols)
			if err != nil {
				b.Fatal(err)
			}
			buf = out
		}
	})
	b.Run("compressed", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, _, err := plan.AppendCompressedColumnsFrame(buf[:0], cols)
			if err != nil {
				b.Fatal(err)
			}
			buf = out
		}
	})
}
