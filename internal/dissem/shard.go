package dissem

import (
	"sysprof/internal/core"
	"sysprof/internal/pubsub"
	"sysprof/internal/simnet"
)

// ShardKey is the pubsub.ShardKeyFunc for SysProf dissemination traffic:
// it routes every record type the daemon publishes to the federated GPA
// shard that owns it. Interaction records key on their flow's canonical
// ShardHash — both endpoints of an interaction hash identically, so the
// client-side and server-side views always reach the same gpad shard and
// correlation stays lossless under partitioning. Flow-less aggregate
// deltas key on the node hash, matching the GPA's shardForNode routing.
// Unknown types report ok=false and are broadcast by the broker.
//
//sysprof:nonblocking
func ShardKey(rec any) (uint64, bool) {
	switch v := rec.(type) {
	case core.Record:
		return v.Flow.ShardHash(), true
	case *core.Record:
		return v.Flow.ShardHash(), true
	case WireRecord:
		return wireFlow(&v).ShardHash(), true
	case *WireRecord:
		return wireFlow(v).ShardHash(), true
	case WireAggregate:
		return simnet.NodeShardHash(simnet.NodeID(v.Node)), true
	case *WireAggregate:
		return simnet.NodeShardHash(simnet.NodeID(v.Node)), true
	}
	return 0, false
}

// wireFlow rebuilds the flow key of a flattened record.
//
//sysprof:nonblocking
//sysprof:noalloc
func wireFlow(w *WireRecord) simnet.FlowKey {
	return simnet.FlowKey{
		Src: simnet.Addr{Node: simnet.NodeID(w.SrcNode), Port: w.SrcPort},
		Dst: simnet.Addr{Node: simnet.NodeID(w.DstNode), Port: w.DstPort},
	}
}

// ShardFilter returns a local-subscription filter with the same semantics
// as a remote shard selector: records whose shard key maps to shard
// `shard` of `of` pass (keyless records pass everywhere). It lets an
// in-process federated tier — N GPA instances behind one broker — use the
// exact routing the TCP path uses.
func ShardFilter(shard, of int) pubsub.Filter {
	sel := pubsub.ShardSelector{Index: uint32(shard), Count: uint32(of)}
	return func(rec any) bool {
		key, ok := ShardKey(rec)
		if !ok {
			return true
		}
		return sel.Match(key)
	}
}
