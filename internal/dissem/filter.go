package dissem

import (
	"fmt"

	"sysprof/internal/core"
	"sysprof/internal/ecode"
	"sysprof/internal/pubsub"
)

// The paper's dissemination daemon applies "dynamic data filters" before
// shipping monitoring data. CompileFilter turns an E-Code predicate into a
// pubsub subscription filter over interaction records, so consumers
// receive only the records they asked for — installable and replaceable
// at runtime, like CPAs.
//
// The program sees the record as "rec" and must return a bool. Example:
//
//	return rec.class == "port:80" && rec.buffer_wait_ns > 1000000;

// coreRecord adapts a core.Record to the ecode.Record interface. It is
// the hot-path adapter: since the daemon publishes []core.Record
// directly, filters evaluate against the original record with no
// flattening copy.
type coreRecord struct {
	r *core.Record
}

var _ ecode.Record = coreRecord{}

// Field implements ecode.Record with the same field names as the
// WireRecord adapter, so one filter source works on either shape.
func (c coreRecord) Field(name string) (ecode.Value, bool) {
	r := c.r
	switch name {
	case "id":
		return int64(r.ID), true
	case "node":
		return int64(r.Node), true
	case "class":
		return r.Class, true
	case "src_node":
		return int64(r.Flow.Src.Node), true
	case "src_port":
		return int64(r.Flow.Src.Port), true
	case "dst_node":
		return int64(r.Flow.Dst.Node), true
	case "dst_port":
		return int64(r.Flow.Dst.Port), true
	case "start_ns":
		return int64(r.Start), true
	case "end_ns":
		return int64(r.End), true
	case "residence_ns":
		return int64(r.End - r.Start), true
	case "req_packets":
		return int64(r.ReqPackets), true
	case "req_bytes":
		return int64(r.ReqBytes), true
	case "resp_packets":
		return int64(r.RespPackets), true
	case "resp_bytes":
		return int64(r.RespBytes), true
	case "proto_ns":
		return int64(r.ProtoTime), true
	case "tx_ns":
		return int64(r.TxTime), true
	case "buffer_wait_ns":
		return int64(r.BufferWait), true
	case "syscall_ns":
		return int64(r.SyscallTime), true
	case "user_ns":
		return int64(r.UserTime), true
	case "blocked_ns":
		return int64(r.BlockedTime), true
	case "server_pid":
		return int64(r.ServerPID), true
	case "server_proc":
		return r.ServerProc, true
	case "ctx_switches":
		return int64(r.CtxSwitches), true
	case "disk_ops":
		return int64(r.DiskOps), true
	}
	return nil, false
}

// recRecord adapts a WireRecord to the ecode.Record interface (kept for
// consumers that re-filter decoded wire records, e.g. a remote GPA).
type recRecord struct {
	w *WireRecord
}

var _ ecode.Record = recRecord{}

// Field implements ecode.Record. Durations are exposed in nanoseconds
// with a _ns suffix so E-Code's integer arithmetic applies directly.
func (r recRecord) Field(name string) (ecode.Value, bool) {
	w := r.w
	switch name {
	case "id":
		return int64(w.ID), true
	case "node":
		return int64(w.Node), true
	case "class":
		return w.Class, true
	case "src_node":
		return int64(w.SrcNode), true
	case "src_port":
		return int64(w.SrcPort), true
	case "dst_node":
		return int64(w.DstNode), true
	case "dst_port":
		return int64(w.DstPort), true
	case "start_ns":
		return int64(w.Start), true
	case "end_ns":
		return int64(w.End), true
	case "residence_ns":
		return int64(w.End - w.Start), true
	case "req_packets":
		return w.ReqPackets, true
	case "req_bytes":
		return w.ReqBytes, true
	case "resp_packets":
		return w.RespPackets, true
	case "resp_bytes":
		return w.RespBytes, true
	case "proto_ns":
		return int64(w.ProtoTime), true
	case "tx_ns":
		return int64(w.TxTime), true
	case "buffer_wait_ns":
		return int64(w.BufferWait), true
	case "syscall_ns":
		return int64(w.SyscallTime), true
	case "user_ns":
		return int64(w.UserTime), true
	case "blocked_ns":
		return int64(w.BlockedTime), true
	case "server_pid":
		return int64(w.ServerPID), true
	case "server_proc":
		return w.ServerProc, true
	case "ctx_switches":
		return int64(w.CtxSwitches), true
	case "disk_ops":
		return int64(w.DiskOps), true
	}
	return nil, false
}

// CompileFilter compiles an E-Code predicate over interaction records
// into a pubsub.Filter. Non-record values and program errors fail closed
// (the record is not delivered), so a broken filter cannot flood a
// subscriber.
func CompileFilter(src string) (pubsub.Filter, error) {
	prog, err := ecode.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("dissem: filter: %w", err)
	}
	inst := prog.NewInstance(ecode.WithStepLimit(10_000))
	return func(rec any) bool {
		var adapted ecode.Record
		switch v := rec.(type) {
		case core.Record:
			adapted = coreRecord{r: &v}
		case *core.Record:
			adapted = coreRecord{r: v}
		case WireRecord:
			adapted = recRecord{w: &v}
		case *WireRecord:
			adapted = recRecord{w: v}
		default:
			return false
		}
		out, err := inst.Run(map[string]ecode.Value{"rec": adapted})
		if err != nil {
			return false
		}
		b, ok := out.(bool)
		return ok && b
	}, nil
}
