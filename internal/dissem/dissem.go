// Package dissem implements the SysProf dissemination daemon. On each
// node it drains the LPA per-CPU buffers (on "buffer full" notifications),
// publishes the records on publish-subscribe channels for remote
// consumers (the GPA) — encoded straight into PBIO wire frames through a
// cached plan, no flattening copy — and exposes current state through
// the /proc virtual filesystem.
package dissem

import (
	"fmt"
	"strings"
	"time"

	"sysprof/internal/core"
	"sysprof/internal/pbio"
	"sysprof/internal/procfs"
	"sysprof/internal/pubsub"
	"sysprof/internal/sim"
	"sysprof/internal/simnet"
)

// ChannelInteractions is the pub-sub channel carrying interaction records.
const ChannelInteractions = "sysprof.interactions"

// ChannelAggregates carries per-class aggregates from LPAs running at
// class granularity. Aggregates are published as deltas on each daemon
// flush and reset locally, so subscribers can sum them.
const ChannelAggregates = "sysprof.aggregates"

// WireRecord is the flat (PBIO-encodable) form of core.Record.
type WireRecord struct {
	ID      uint64
	Node    uint16
	SrcNode uint16
	SrcPort uint16
	DstNode uint16
	DstPort uint16
	Class   string
	CPU     uint8

	Start time.Duration
	End   time.Duration

	ReqPackets  int64
	ReqBytes    int64
	RespPackets int64
	RespBytes   int64

	ProtoTime   time.Duration
	TxTime      time.Duration
	BufferWait  time.Duration
	SyscallTime time.Duration
	UserTime    time.Duration
	BlockedTime time.Duration

	ServerPID   int32
	ServerProc  string
	CtxSwitches uint64
	DiskOps     uint64
}

// ToWire flattens a record.
func ToWire(r *core.Record) WireRecord {
	return WireRecord{
		ID: r.ID, Node: uint16(r.Node),
		SrcNode: uint16(r.Flow.Src.Node), SrcPort: r.Flow.Src.Port,
		DstNode: uint16(r.Flow.Dst.Node), DstPort: r.Flow.Dst.Port,
		Class: r.Class, CPU: r.CPU, Start: r.Start, End: r.End,
		ReqPackets: int64(r.ReqPackets), ReqBytes: int64(r.ReqBytes),
		RespPackets: int64(r.RespPackets), RespBytes: int64(r.RespBytes),
		ProtoTime: r.ProtoTime, TxTime: r.TxTime, BufferWait: r.BufferWait,
		SyscallTime: r.SyscallTime, UserTime: r.UserTime, BlockedTime: r.BlockedTime,
		ServerPID: r.ServerPID, ServerProc: r.ServerProc,
		CtxSwitches: r.CtxSwitches, DiskOps: r.DiskOps,
	}
}

// FromWire reconstructs a record.
func FromWire(w *WireRecord) core.Record {
	return core.Record{
		ID: w.ID, Node: simnet.NodeID(w.Node),
		Flow: simnet.FlowKey{
			Src: simnet.Addr{Node: simnet.NodeID(w.SrcNode), Port: w.SrcPort},
			Dst: simnet.Addr{Node: simnet.NodeID(w.DstNode), Port: w.DstPort},
		},
		Class: w.Class, CPU: w.CPU, Start: w.Start, End: w.End,
		ReqPackets: int(w.ReqPackets), ReqBytes: int(w.ReqBytes),
		RespPackets: int(w.RespPackets), RespBytes: int(w.RespBytes),
		ProtoTime: w.ProtoTime, TxTime: w.TxTime, BufferWait: w.BufferWait,
		SyscallTime: w.SyscallTime, UserTime: w.UserTime, BlockedTime: w.BlockedTime,
		ServerPID: w.ServerPID, ServerProc: w.ServerProc,
		CtxSwitches: w.CtxSwitches, DiskOps: w.DiskOps,
	}
}

// WireAggregate is the flat (PBIO-encodable) form of a per-class
// aggregate delta from one node.
type WireAggregate struct {
	Node  uint16
	Class string
	Count uint64

	TotalResidence time.Duration
	TotalUser      time.Duration
	TotalKernel    time.Duration
	TotalBlocked   time.Duration
	TotalBufWait   time.Duration

	ReqBytes  uint64
	RespBytes uint64

	MaxResidence time.Duration
}

// AggToWire flattens an aggregate.
func AggToWire(node simnet.NodeID, a *core.Aggregate) WireAggregate {
	return WireAggregate{
		Node: uint16(node), Class: a.Class, Count: a.Count,
		TotalResidence: a.TotalResidence, TotalUser: a.TotalUser,
		TotalKernel: a.TotalKernel, TotalBlocked: a.TotalBlocked,
		TotalBufWait: a.TotalBufWait,
		ReqBytes:     a.ReqBytes, RespBytes: a.RespBytes,
		MaxResidence: a.MaxResidence,
	}
}

// AggFromWire reconstructs an aggregate (the node id is returned
// separately since core.Aggregate does not carry it).
func AggFromWire(w *WireAggregate) (simnet.NodeID, core.Aggregate) {
	return simnet.NodeID(w.Node), core.Aggregate{
		Class: w.Class, Count: w.Count,
		TotalResidence: w.TotalResidence, TotalUser: w.TotalUser,
		TotalKernel: w.TotalKernel, TotalBlocked: w.TotalBlocked,
		TotalBufWait: w.TotalBufWait,
		ReqBytes:     w.ReqBytes, RespBytes: w.RespBytes,
		MaxResidence: w.MaxResidence,
	}
}

// RegisterFormats registers the daemon's wire formats with a PBIO
// registry (both broker and subscriber sides need this). It also binds
// core.Record to the interaction format: the record's flattened field
// layout is wire-identical to WireRecord, so the daemon publishes
// records directly and the broker's cached encode plan writes them
// straight into the wire buffer — no intermediate WireRecord copy.
// Decoders still materialize *WireRecord; FromWire converts back.
func RegisterFormats(reg *pbio.Registry) error {
	if _, err := reg.Register("sysprof.interaction", WireRecord{}); err != nil {
		return fmt.Errorf("dissem: %w", err)
	}
	if _, err := reg.BindType("sysprof.interaction", core.Record{}); err != nil {
		return fmt.Errorf("dissem: %w", err)
	}
	if _, err := reg.Register("sysprof.aggregate", WireAggregate{}); err != nil {
		return fmt.Errorf("dissem: %w", err)
	}
	reg.BindColumnDecoder("sysprof.interaction", decodeInteractionColumns)
	return nil
}

// Stats counts daemon activity.
type Stats struct {
	BatchesDrained   uint64
	BatchesPublished uint64
	RecordsPublished uint64
	PublishErrors    uint64
	// RecordsDropped counts records lost to failed publishes — each
	// errored batch contributes its full record count, so scenario-level
	// loss accounting can attribute every record that left an LPA buffer
	// but never reached a subscriber.
	RecordsDropped uint64
}

// Config configures a daemon.
type Config struct {
	// NodeName labels procfs entries (e.g. "/sysprof/<node>/...").
	NodeName string
	// Node is the node id stamped on published aggregates.
	Node simnet.NodeID
	// CopyDelay models the daemon wake-up plus buffer copy latency: the
	// LPA buffer is released only after this much virtual time, which is
	// what makes buffer sizing matter (records drop if both buffers fill
	// before the daemon catches up).
	CopyDelay time.Duration
	// FlushInterval is how often the daemon force-flushes LPA windows and
	// partial buffers ("window contents are evicted ... after some time").
	FlushInterval time.Duration
	// MaxWindowAge evicts window records older than this on each flush.
	MaxWindowAge time.Duration
	// FlowExpiry drops LPA flow-table state for flows with no traffic in
	// this long, reclaiming table slots on each periodic flush. 0 disables
	// expiry (flows live until Stop). Expiry only removes flows with no
	// episode in flight, so it never truncates an active interaction.
	FlowExpiry time.Duration
}

// Daemon is one node's dissemination daemon.
type Daemon struct {
	eng    *sim.Engine
	broker *pubsub.Broker
	fs     *procfs.FS
	cfg    Config

	lpas    []*core.LPA
	flushEv *sim.Event
	stats   Stats
}

// New creates a daemon. broker and fs may be nil (publishing / procfs
// disabled, useful in unit tests and overhead ablations).
func New(eng *sim.Engine, broker *pubsub.Broker, fs *procfs.FS, cfg Config) *Daemon {
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 500 * time.Millisecond
	}
	if cfg.MaxWindowAge <= 0 {
		cfg.MaxWindowAge = 2 * time.Second
	}
	if cfg.NodeName == "" {
		cfg.NodeName = "node"
	}
	return &Daemon{eng: eng, broker: broker, fs: fs, cfg: cfg}
}

// OnFull is the callback to wire into core.Config.OnFull when building an
// LPA this daemon serves: it publishes the drained columnar batch and
// releases the LPA buffer after the configured copy delay. The batch stays
// valid until release() is called (the buffer cannot be reused before
// then), so no defensive copy is made — the broker encodes the columns
// straight into the wire buffer at publish time.
//
//sysprof:nonblocking
func (d *Daemon) OnFull(cpu int, batch *core.RecordColumns, release func()) {
	d.stats.BatchesDrained++
	publish := func() {
		d.publishColumns(batch)
		release()
	}
	if d.cfg.CopyDelay <= 0 {
		publish()
		return
	}
	d.eng.After(d.cfg.CopyDelay, publish)
}

// publishColumns publishes one drained columnar batch. Local subscribers
// receive the *core.RecordColumns itself, valid only during their callback
// (the LPA buffer is released afterwards); remote subscribers get a
// columnar (or, for legacy peers, row-batch) wire frame with no
// intermediate copy.
//
//sysprof:nonblocking
func (d *Daemon) publishColumns(batch *core.RecordColumns) {
	n := batch.Len()
	if n == 0 {
		return
	}
	if d.broker == nil {
		d.stats.RecordsPublished += uint64(n)
		return
	}
	if err := d.broker.PublishColumns(ChannelInteractions, batch); err != nil {
		d.stats.PublishErrors++
		d.stats.RecordsDropped += uint64(n)
		return
	}
	d.stats.BatchesPublished++
	d.stats.RecordsPublished += uint64(n)
}

// Serve registers an LPA with the daemon: its window is flushed
// periodically and its state appears in procfs. Call Start afterwards to
// begin the flush timer.
func (d *Daemon) Serve(lpa *core.LPA) {
	idx := len(d.lpas)
	d.lpas = append(d.lpas, lpa)
	if d.fs == nil {
		return
	}
	base := fmt.Sprintf("/sysprof/%s/lpa/%d", d.cfg.NodeName, idx)
	d.fs.Register(base+"/window", func() string {
		var sb strings.Builder
		for _, r := range lpa.Window().Snapshot() {
			fmt.Fprintf(&sb, "%d %s class=%s user=%v kernel=%v blocked=%v total=%v\n",
				r.ID, r.Flow, r.Class, r.UserTime, r.KernelTime(), r.BlockedTime, r.Residence())
		}
		return sb.String()
	})
	d.fs.Register(base+"/stats", func() string {
		st := lpa.Stats()
		drops, switches := lpa.Buffers().Stats()
		return fmt.Sprintf("events=%d interactions=%d flows=%d dropped_episodes=%d buf_drops=%d buf_switches=%d\n",
			st.Events, st.Interactions, st.OpenFlows, st.DroppedEpisodes, drops, switches)
	})
	d.fs.Register(base+"/breakdown", func() string {
		// Figure-1 style per-step latency view of the newest interaction.
		recs := lpa.Window().Snapshot()
		if len(recs) == 0 {
			return "no interactions in window\n"
		}
		return core.RenderBreakdown(&recs[len(recs)-1])
	})
	d.fs.Register(base+"/aggregates", func() string {
		var sb strings.Builder
		for class, agg := range lpa.Aggregates() {
			fmt.Fprintf(&sb, "%s count=%d mean_user=%v mean_kernel=%v mean_total=%v\n",
				class, agg.Count, agg.MeanUser(), agg.MeanKernel(), agg.MeanResidence())
		}
		return sb.String()
	})
}

// Start begins periodic window eviction and buffer flushing.
func (d *Daemon) Start() {
	if d.flushEv != nil {
		return
	}
	var tick func()
	tick = func() {
		d.FlushNow()
		d.flushEv = d.eng.After(d.cfg.FlushInterval, tick)
	}
	d.flushEv = d.eng.After(d.cfg.FlushInterval, tick)
}

// FlushNow evicts aged window contents, drains partial buffers, and
// publishes per-class aggregate deltas for LPAs running at class
// granularity. All aggregates produced by one flush go out as a single
// pub-sub batch.
func (d *Daemon) FlushNow() {
	cutoff := d.eng.Now() - d.cfg.MaxWindowAge
	var idleCutoff time.Duration
	if d.cfg.FlowExpiry > 0 {
		idleCutoff = d.eng.Now() - d.cfg.FlowExpiry
	}
	var wires []WireAggregate
	for _, lpa := range d.lpas {
		lpa.Window().EvictOlderThan(cutoff)
		lpa.Buffers().FlushAll()
		if idleCutoff > 0 {
			lpa.ExpireIdleFlows(idleCutoff)
		}
		if lpa.Granularity() != core.PerClass {
			continue
		}
		aggs := lpa.Aggregates()
		if len(aggs) == 0 {
			continue
		}
		lpa.ResetAggregates()
		if d.broker == nil {
			continue
		}
		for _, agg := range aggs {
			wires = append(wires, AggToWire(d.cfg.Node, &agg))
		}
	}
	if len(wires) == 0 {
		return
	}
	if err := d.broker.PublishBatch(ChannelAggregates, wires); err != nil {
		d.stats.PublishErrors++
		d.stats.RecordsDropped += uint64(len(wires))
		return
	}
	d.stats.BatchesPublished++
	d.stats.RecordsPublished += uint64(len(wires))
}

// FlushInterval reports the current flush period.
func (d *Daemon) FlushInterval() time.Duration { return d.cfg.FlushInterval }

// SetFlushInterval changes the flush period at runtime (the controller's
// "flushinterval" command). If the periodic timer is running it is
// rescheduled so the new period takes effect immediately; non-positive
// values are rejected.
func (d *Daemon) SetFlushInterval(iv time.Duration) error {
	if iv <= 0 {
		return fmt.Errorf("dissem: flush interval must be positive, got %v", iv)
	}
	d.cfg.FlushInterval = iv
	if d.flushEv != nil {
		d.flushEv.Cancel()
		d.flushEv = nil
		d.Start()
	}
	return nil
}

// Stop cancels the flush timer and performs a final full flush.
func (d *Daemon) Stop() {
	if d.flushEv != nil {
		d.flushEv.Cancel()
		d.flushEv = nil
	}
	for _, lpa := range d.lpas {
		lpa.FlushOpen()
		lpa.Window().EvictAll()
		lpa.Buffers().FlushAll()
	}
}

// Stats returns daemon counters.
func (d *Daemon) Stats() Stats { return d.stats }
