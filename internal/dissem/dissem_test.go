package dissem

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"sysprof/internal/core"
	"sysprof/internal/kprof"
	"sysprof/internal/pbio"
	"sysprof/internal/procfs"
	"sysprof/internal/pubsub"
	"sysprof/internal/sim"
	"sysprof/internal/simnet"
	"sysprof/internal/simos"
)

func sampleRecord(id uint64) core.Record {
	return core.Record{
		ID: id, Node: 2,
		Flow: simnet.FlowKey{
			Src: simnet.Addr{Node: 1, Port: 1000},
			Dst: simnet.Addr{Node: 2, Port: 80},
		},
		Class: "port:80", Start: time.Millisecond, End: 3 * time.Millisecond,
		ReqPackets: 1, ReqBytes: 500, RespPackets: 2, RespBytes: 2900,
		ProtoTime: 10 * time.Microsecond, TxTime: 20 * time.Microsecond,
		BufferWait: 100 * time.Microsecond, SyscallTime: 5 * time.Microsecond,
		UserTime: 200 * time.Microsecond, BlockedTime: 50 * time.Microsecond,
		ServerPID: 7, ServerProc: "httpd", CtxSwitches: 3, DiskOps: 1,
	}
}

func TestWireRoundTrip(t *testing.T) {
	r := sampleRecord(42)
	got := FromWire(&WireRecord{})
	_ = got
	w := ToWire(&r)
	back := FromWire(&w)
	if back != r {
		t.Fatalf("round trip:\n got %+v\nwant %+v", back, r)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	prop := func(id uint64, sp, dp uint16, user, kernel int32, class string) bool {
		r := core.Record{
			ID: id,
			Flow: simnet.FlowKey{
				Src: simnet.Addr{Node: 1, Port: sp},
				Dst: simnet.Addr{Node: 2, Port: dp},
			},
			Class:    class,
			UserTime: time.Duration(user), BufferWait: time.Duration(kernel),
		}
		w := ToWire(&r)
		return FromWire(&w) == r
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWireEncodesWithPBIO(t *testing.T) {
	reg := pbio.NewRegistry()
	if err := RegisterFormats(reg); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r := sampleRecord(1)
	w := ToWire(&r)
	if err := pbio.NewEncoder(&sb, reg).Encode(w); err != nil {
		t.Fatal(err)
	}
	dec := pbio.NewDecoder(strings.NewReader(sb.String()), reg)
	rec, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rec.Value.(*WireRecord)
	if !ok {
		t.Fatalf("decoded %T", rec.Value)
	}
	if FromWire(got) != r {
		t.Fatalf("pbio round trip mismatch: %+v", got)
	}
}

func TestDaemonPublishesDrainedBatches(t *testing.T) {
	eng := sim.NewEngine()
	reg := pbio.NewRegistry()
	if err := RegisterFormats(reg); err != nil {
		t.Fatal(err)
	}
	broker := pubsub.NewBroker(reg)
	defer broker.Close()

	var got []core.Record
	broker.Subscribe(ChannelInteractions, func(rec any) {
		batch, ok := rec.(*core.RecordColumns)
		if !ok {
			t.Errorf("local subscriber got %T, want *core.RecordColumns", rec)
			return
		}
		// The batch is only valid during the callback.
		got = batch.AppendTo(got)
	})

	d := New(eng, broker, nil, Config{CopyDelay: time.Millisecond})
	buf := core.NewBufferSet(1, 2, d.OnFull)
	buf.Push(0, sampleRecord(1))
	buf.Push(0, sampleRecord(2))
	if len(got) != 0 {
		t.Fatal("records published before copy delay elapsed")
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("published %d, want 2", len(got))
	}
	st := d.Stats()
	if st.BatchesDrained != 1 || st.BatchesPublished != 1 || st.RecordsPublished != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDaemonReleaseAllowsReuse(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, nil, nil, Config{CopyDelay: time.Millisecond})
	buf := core.NewBufferSet(1, 1, d.OnFull)
	for i := uint64(1); i <= 3; i++ {
		buf.Push(0, sampleRecord(i))
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	drops, switches := buf.Stats()
	if drops != 0 || switches != 3 {
		t.Fatalf("drops=%d switches=%d", drops, switches)
	}
	if d.Stats().RecordsPublished != 3 {
		t.Fatalf("published = %d", d.Stats().RecordsPublished)
	}
}

func TestDaemonSlowCopyDropsRecords(t *testing.T) {
	// With a copy delay longer than it takes to fill both buffers, records
	// must drop — the paper's "if the data is not picked up in a timely
	// fashion, it may be overwritten".
	eng := sim.NewEngine()
	d := New(eng, nil, nil, Config{CopyDelay: time.Second})
	buf := core.NewBufferSet(1, 1, d.OnFull)
	for i := uint64(1); i <= 4; i++ {
		buf.Push(0, sampleRecord(i))
	}
	drops, _ := buf.Stats()
	if drops == 0 {
		t.Fatal("no drops despite slow daemon")
	}
}

func TestDaemonPeriodicFlushAndProcfs(t *testing.T) {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	node, err := simos.NewNode(eng, network, "srv", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs := procfs.New()
	d := New(eng, nil, fs, Config{
		NodeName:      "srv",
		FlushInterval: 100 * time.Millisecond,
		MaxWindowAge:  200 * time.Millisecond,
	})
	lpa := core.NewLPA(node.Hub(), core.Config{OnFull: d.OnFull})
	d.Serve(lpa)
	d.Start()

	// Drive one synthetic event through the hub so the LPA has state.
	flow := simnet.FlowKey{Src: simnet.Addr{Node: 9, Port: 5}, Dst: simnet.Addr{Node: node.ID(), Port: 80}}
	node.Hub().Emit(&kprof.Event{Type: kprof.EvNetRx, Flow: flow, Bytes: 100})
	eng.RunFor(50 * time.Millisecond)

	if out, err := fs.Read("/sysprof/srv/lpa/0/stats"); err != nil || !strings.Contains(out, "events=") {
		t.Fatalf("stats entry: %q %v", out, err)
	}
	if _, err := fs.Read("/sysprof/srv/lpa/0/window"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("/sysprof/srv/lpa/0/aggregates"); err != nil {
		t.Fatal(err)
	}
	d.Stop()
	// Stop is idempotent on the timer and flushes the window.
	d.Stop()
}

func TestSetFlushInterval(t *testing.T) {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	node, err := simos.NewNode(eng, network, "srv", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := pbio.NewRegistry()
	if err := RegisterFormats(reg); err != nil {
		t.Fatal(err)
	}
	broker := pubsub.NewBroker(reg)
	defer broker.Close()
	published := 0
	broker.Subscribe(ChannelAggregates, func(rec any) {
		published += len(rec.([]WireAggregate))
	})

	d := New(eng, broker, nil, Config{Node: node.ID(), FlushInterval: time.Hour})
	if d.FlushInterval() != time.Hour {
		t.Fatalf("FlushInterval = %v", d.FlushInterval())
	}
	if err := d.SetFlushInterval(0); err == nil {
		t.Fatal("non-positive interval accepted")
	}
	lpa := core.NewLPA(node.Hub(), core.Config{Granularity: core.PerClass, OnFull: d.OnFull})
	d.Serve(lpa)
	d.Start()

	// Complete one interaction so a pending aggregate exists.
	flow := simnet.FlowKey{Src: simnet.Addr{Node: 9, Port: 5}, Dst: simnet.Addr{Node: node.ID(), Port: 80}}
	hub := node.Hub()
	hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Flow: flow, Bytes: 100})
	hub.Emit(&kprof.Event{Type: kprof.EvNetTx, Flow: flow.Reverse(), Bytes: 50, Last: true})
	hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Flow: flow, Bytes: 100})

	// At the hour-long default nothing flushes within 10 virtual seconds.
	// Retune to 1s and the pending aggregate must go out on the new cadence.
	if err := d.SetFlushInterval(time.Second); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(10 * time.Second)
	if published != 1 {
		t.Fatalf("published %d aggregates after retune, want 1", published)
	}
	if d.FlushInterval() != time.Second {
		t.Fatalf("FlushInterval after set = %v", d.FlushInterval())
	}
	d.Stop()
}

func TestAggWireRoundTrip(t *testing.T) {
	agg := core.Aggregate{
		Class: "port:80", Count: 5,
		TotalResidence: 10 * time.Millisecond, TotalUser: 2 * time.Millisecond,
		TotalKernel: time.Millisecond, TotalBlocked: 3 * time.Millisecond,
		TotalBufWait: 500 * time.Microsecond,
		ReqBytes:     1000, RespBytes: 9000, MaxResidence: 4 * time.Millisecond,
	}
	w := AggToWire(7, &agg)
	node, back := AggFromWire(&w)
	if node != 7 || back != agg {
		t.Fatalf("round trip: node=%d %+v", node, back)
	}
}

func TestDaemonPublishesClassAggregates(t *testing.T) {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	node, err := simos.NewNode(eng, network, "srv", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := pbio.NewRegistry()
	if err := RegisterFormats(reg); err != nil {
		t.Fatal(err)
	}
	broker := pubsub.NewBroker(reg)
	defer broker.Close()

	var got []WireAggregate
	broker.Subscribe(ChannelAggregates, func(rec any) {
		batch, ok := rec.([]WireAggregate)
		if !ok {
			t.Errorf("local subscriber got %T, want []WireAggregate", rec)
			return
		}
		got = append(got, batch...)
	})

	d := New(eng, broker, nil, Config{Node: node.ID(), FlushInterval: 50 * time.Millisecond})
	lpa := core.NewLPA(node.Hub(), core.Config{Granularity: core.PerClass, OnFull: d.OnFull})
	d.Serve(lpa)

	// Drive one full interaction through the hub so an aggregate exists.
	flow := simnet.FlowKey{Src: simnet.Addr{Node: 9, Port: 5}, Dst: simnet.Addr{Node: node.ID(), Port: 80}}
	hub := node.Hub()
	hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Flow: flow, Bytes: 100})
	hub.Emit(&kprof.Event{Type: kprof.EvNetTx, Flow: flow.Reverse(), Bytes: 50, Last: true})
	hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Flow: flow, Bytes: 100}) // closes first

	d.FlushNow()
	if len(got) != 1 {
		t.Fatalf("published %d aggregates, want 1", len(got))
	}
	if got[0].Class != "port:80" || got[0].Count != 1 || got[0].Node != uint16(node.ID()) {
		t.Fatalf("aggregate = %+v", got[0])
	}
	// Delta semantics: the LPA's aggregates were reset on publish.
	if len(lpa.Aggregates()) != 0 {
		t.Fatal("aggregates not reset after publish")
	}
	// A flush with nothing new publishes nothing.
	d.FlushNow()
	if len(got) != 1 {
		t.Fatalf("empty flush published: %d", len(got))
	}
}

func TestProcfsBreakdownEntry(t *testing.T) {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	node, err := simos.NewNode(eng, network, "srv", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs := procfs.New()
	d := New(eng, nil, fs, Config{NodeName: "srv"})
	lpa := core.NewLPA(node.Hub(), core.Config{OnFull: d.OnFull})
	d.Serve(lpa)

	out, err := fs.Read("/sysprof/srv/lpa/0/breakdown")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no interactions") {
		t.Fatalf("empty breakdown = %q", out)
	}
	// Complete one interaction, then the entry renders Figure-1 steps.
	flow := simnet.FlowKey{Src: simnet.Addr{Node: 9, Port: 5}, Dst: simnet.Addr{Node: node.ID(), Port: 80}}
	hub := node.Hub()
	hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Flow: flow, Bytes: 100})
	hub.Emit(&kprof.Event{Type: kprof.EvNetTx, Flow: flow.Reverse(), Bytes: 50, Last: true})
	hub.Emit(&kprof.Event{Type: kprof.EvNetRx, Flow: flow, Bytes: 100})
	out, err = fs.Read("/sysprof/srv/lpa/0/breakdown")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "L2 kernel buffer wait") {
		t.Fatalf("breakdown = %q", out)
	}
}
