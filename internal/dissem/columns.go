package dissem

import (
	"time"

	"sysprof/internal/core"
	"sysprof/internal/pbio"
	"sysprof/internal/simnet"
)

// decodeInteractionColumns rebuilds a *core.RecordColumns from a columnar
// "sysprof.interaction" frame. Columns arrive in wire-field order (the
// flat WireRecord layout), so the four flow u16 columns fill successive
// pieces of the packed FlowKey column. Capacity is reserved up to
// pbio.MaxColumnReserve rows; a hostile row count beyond that only grows
// the batch as bytes actually arrive.
func decodeInteractionColumns(cr *pbio.ColumnReader, rows int) (any, error) {
	cols := core.NewRecordColumns(min(rows, pbio.MaxColumnReserve))
	for i := 0; i < rows; i++ {
		v, err := cr.Uint64()
		if err != nil {
			return nil, err
		}
		cols.IDs = append(cols.IDs, v)
	}
	for i := 0; i < rows; i++ {
		v, err := cr.Uint16()
		if err != nil {
			return nil, err
		}
		cols.Nodes = append(cols.Nodes, simnet.NodeID(v))
	}
	for i := 0; i < rows; i++ {
		v, err := cr.Uint16()
		if err != nil {
			return nil, err
		}
		cols.Flows = append(cols.Flows, simnet.FlowKey{Src: simnet.Addr{Node: simnet.NodeID(v)}})
	}
	for i := 0; i < rows; i++ {
		v, err := cr.Uint16()
		if err != nil {
			return nil, err
		}
		cols.Flows[i].Src.Port = v
	}
	for i := 0; i < rows; i++ {
		v, err := cr.Uint16()
		if err != nil {
			return nil, err
		}
		cols.Flows[i].Dst.Node = simnet.NodeID(v)
	}
	for i := 0; i < rows; i++ {
		v, err := cr.Uint16()
		if err != nil {
			return nil, err
		}
		cols.Flows[i].Dst.Port = v
	}
	for i := 0; i < rows; i++ {
		v, err := cr.String()
		if err != nil {
			return nil, err
		}
		cols.Classes = append(cols.Classes, v)
	}
	for i := 0; i < rows; i++ {
		v, err := cr.Byte()
		if err != nil {
			return nil, err
		}
		cols.CPUs = append(cols.CPUs, v)
	}
	var err error
	if cols.Starts, err = readDurColumn(cr, cols.Starts, rows); err != nil {
		return nil, err
	}
	if cols.Ends, err = readDurColumn(cr, cols.Ends, rows); err != nil {
		return nil, err
	}
	if cols.ReqPackets, err = readIntColumn(cr, cols.ReqPackets, rows); err != nil {
		return nil, err
	}
	if cols.ReqBytes, err = readIntColumn(cr, cols.ReqBytes, rows); err != nil {
		return nil, err
	}
	if cols.RespPackets, err = readIntColumn(cr, cols.RespPackets, rows); err != nil {
		return nil, err
	}
	if cols.RespBytes, err = readIntColumn(cr, cols.RespBytes, rows); err != nil {
		return nil, err
	}
	if cols.ProtoTimes, err = readDurColumn(cr, cols.ProtoTimes, rows); err != nil {
		return nil, err
	}
	if cols.TxTimes, err = readDurColumn(cr, cols.TxTimes, rows); err != nil {
		return nil, err
	}
	if cols.BufferWaits, err = readDurColumn(cr, cols.BufferWaits, rows); err != nil {
		return nil, err
	}
	if cols.SyscallTimes, err = readDurColumn(cr, cols.SyscallTimes, rows); err != nil {
		return nil, err
	}
	if cols.UserTimes, err = readDurColumn(cr, cols.UserTimes, rows); err != nil {
		return nil, err
	}
	if cols.BlockedTimes, err = readDurColumn(cr, cols.BlockedTimes, rows); err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		v, err := cr.Int32()
		if err != nil {
			return nil, err
		}
		cols.ServerPIDs = append(cols.ServerPIDs, v)
	}
	for i := 0; i < rows; i++ {
		v, err := cr.String()
		if err != nil {
			return nil, err
		}
		cols.ServerProcs = append(cols.ServerProcs, v)
	}
	for i := 0; i < rows; i++ {
		v, err := cr.Uint64()
		if err != nil {
			return nil, err
		}
		cols.CtxSwitches = append(cols.CtxSwitches, v)
	}
	for i := 0; i < rows; i++ {
		v, err := cr.Uint64()
		if err != nil {
			return nil, err
		}
		cols.DiskOps = append(cols.DiskOps, v)
	}
	return cols, nil
}

func readDurColumn(cr *pbio.ColumnReader, dst []time.Duration, rows int) ([]time.Duration, error) {
	for i := 0; i < rows; i++ {
		v, err := cr.Duration()
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

func readIntColumn(cr *pbio.ColumnReader, dst []int, rows int) ([]int, error) {
	for i := 0; i < rows; i++ {
		v, err := cr.Int()
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}
