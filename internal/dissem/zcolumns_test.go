package dissem

import (
	"bytes"
	"encoding/binary"
	"net"
	"reflect"
	"testing"
	"time"

	"sysprof/internal/core"
	"sysprof/internal/pbio"
	"sysprof/internal/pubsub"
	"sysprof/internal/simnet"
)

// shardLinkBatch builds a representative shard-link batch: one origin
// node streaming interactions for a handful of service classes, with
// near-monotonic timestamps, climbing ephemeral ports, and a small set
// of server processes. This is the traffic shape the per-column
// encodings are chosen for, so it doubles as the compression-ratio
// fixture.
func shardLinkBatch(n int) *core.RecordColumns {
	classes := []string{"port:80", "port:443", "port:5432"}
	procs := []string{"httpd", "postgres"}
	cols := core.NewRecordColumns(n)
	for i := 0; i < n; i++ {
		r := core.Record{
			ID:   uint64(1_000_000 + i),
			Node: 3,
			Flow: simnet.FlowKey{
				Src: simnet.Addr{Node: 3, Port: uint16(32768 + i%2000)},
				Dst: simnet.Addr{Node: 7, Port: uint16(80 + 363*(i%3))},
			},
			Class:       classes[i%len(classes)],
			CPU:         uint8(i / 128),
			Start:       time.Duration(i)*50*time.Microsecond + time.Second,
			End:         time.Duration(i)*50*time.Microsecond + time.Second + 300*time.Microsecond,
			ReqPackets:  2 + i%3,
			ReqBytes:    512 + 16*(i%7),
			RespPackets: 4,
			RespBytes:   4096 + 128*(i%5),
			ProtoTime:   40*time.Microsecond + time.Duration(i%9)*time.Microsecond,
			TxTime:      12 * time.Microsecond,
			BufferWait:  time.Duration(i%4) * time.Microsecond,
			SyscallTime: 7 * time.Microsecond,
			UserTime:    90 * time.Microsecond,
			BlockedTime: time.Duration(i%2) * time.Microsecond,
			ServerPID:   int32(4242 + i%len(procs)),
			ServerProc:  procs[i%len(procs)],
			CtxSwitches: uint64(10_000 + 3*i),
			DiskOps:     uint64(i % 2),
		}
		cols.Append(&r)
	}
	return cols
}

// compressedStream hand-assembles def + 0x05 frame the way the broker's
// encodeColumnsFrame does.
func compressedStream(tb testing.TB, cols *core.RecordColumns) []byte {
	tb.Helper()
	reg := pbio.NewRegistry()
	if err := RegisterFormats(reg); err != nil {
		tb.Fatal(err)
	}
	plan := reg.PlanFor(reflect.TypeOf(core.Record{}))
	if plan == nil {
		tb.Fatal("no plan bound for core.Record")
	}
	stream := plan.Format().AppendDef(nil)
	stream, n, err := plan.AppendCompressedColumnsFrame(stream, cols)
	if err != nil {
		tb.Fatal(err)
	}
	if n != cols.Len() {
		tb.Fatalf("frame row count %d, want %d", n, cols.Len())
	}
	return stream
}

// TestCompressedColumnsRoundTrip pins the 0x05 wire format end to end:
// a compressed columnar frame decoded through the bound column decoder
// must reproduce the original batch byte for byte, and a subscriber
// without a column decoder (the generic materialization path) must
// still recover the identical rows.
func TestCompressedColumnsRoundTrip(t *testing.T) {
	const rows = 257 // odd size: exercises run tails and dict runs
	cols := shardLinkBatch(rows)
	want := cols.AppendTo(nil)
	stream := compressedStream(t, cols)

	// Bound-decoder path: the shard-link subscriber's configuration.
	reg := pbio.NewRegistry()
	if err := RegisterFormats(reg); err != nil {
		t.Fatal(err)
	}
	rec, err := pbio.NewDecoder(bytes.NewReader(stream), reg).Decode()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rec.Value.(*core.RecordColumns)
	if !ok {
		t.Fatalf("decoded %T, want *core.RecordColumns", rec.Value)
	}
	if got.Len() != rows {
		t.Fatalf("decoded %d rows, want %d", got.Len(), rows)
	}
	for i, w := range want {
		if r := got.Row(i); r != w {
			t.Fatalf("row %d mismatch:\n got %+v\nwant %+v", i, r, w)
		}
	}

	// Generic path: WireRecord registered, no column decoder — the
	// ColumnReader's per-kind reads must materialize identical rows.
	plainReg := pbio.NewRegistry()
	if _, err := plainReg.Register("sysprof.interaction", WireRecord{}); err != nil {
		t.Fatal(err)
	}
	dec := pbio.NewDecoder(bytes.NewReader(stream), plainReg)
	for i := 0; i < rows; i++ {
		rec, err := dec.Decode()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		w, ok := rec.Value.(*WireRecord)
		if !ok {
			t.Fatalf("row %d: decoded %T, want *WireRecord", i, rec.Value)
		}
		if got := FromWire(w); got != want[i] {
			t.Fatalf("row %d mismatch:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
}

// TestCompressedColumnsShrink holds the compression bar: on a
// representative shard-link batch the 0x05 frame must be at least 2x
// smaller than the plain 0x04 columnar frame.
func TestCompressedColumnsShrink(t *testing.T) {
	cols := shardLinkBatch(512)
	reg := pbio.NewRegistry()
	if err := RegisterFormats(reg); err != nil {
		t.Fatal(err)
	}
	plan := reg.PlanFor(reflect.TypeOf(core.Record{}))
	plain, _, err := plan.AppendColumnsFrame(nil, cols)
	if err != nil {
		t.Fatal(err)
	}
	compressed, _, err := plan.AppendCompressedColumnsFrame(nil, cols)
	if err != nil {
		t.Fatal(err)
	}
	if 2*len(compressed) > len(plain) {
		t.Fatalf("compressed frame %d bytes vs plain %d: shrink %.2fx, want >= 2x",
			len(compressed), len(plain), float64(len(plain))/float64(len(compressed)))
	}
	t.Logf("512-row shard-link batch: plain %d bytes, compressed %d bytes (%.2fx)",
		len(plain), len(compressed), float64(len(plain))/float64(len(compressed)))
}

// TestCompressedEncodingTagsMatchPBIO pins core's unexported zEnc*
// encoding tags against pbio's exported ColEnc* constants. core cannot
// import pbio, so the two packages each declare the values; this test —
// in the one package that imports both — is what keeps them equal.
func TestCompressedEncodingTagsMatchPBIO(t *testing.T) {
	cols := shardLinkBatch(8)
	for _, tc := range []struct {
		field int
		want  byte
		name  string
	}{
		{0, pbio.ColEncDelta, "ID delta"},
		{1, pbio.ColEncRLE, "Node RLE"},
		{2, pbio.ColEncRLE, "Flow.Src.Node RLE"},
		{3, pbio.ColEncDelta, "Flow.Src.Port delta"},
		{6, pbio.ColEncDict, "Class dict"},
		{7, pbio.ColEncRLE, "CPU RLE"},
		{8, pbio.ColEncDelta, "Start delta"},
		{20, pbio.ColEncRLE, "ServerPID RLE"},
		{21, pbio.ColEncDict, "ServerProc dict"},
	} {
		buf := cols.AppendCompressedColumn(nil, tc.field)
		if len(buf) == 0 || buf[0] != tc.want {
			t.Errorf("%s: field %d opens with tag %#x, want %#x", tc.name, tc.field, buf[0], tc.want)
		}
	}

	// The raw fallback: a string column with more distinct values than
	// the dictionary holds must be tagged raw.
	big := core.NewRecordColumns(64)
	for i := 0; i < 64; i++ {
		r := core.Record{ID: uint64(i), Class: string(rune('A'+i%40)) + "class"}
		big.Append(&r)
	}
	if buf := big.AppendCompressedColumn(nil, 6); len(buf) == 0 || buf[0] != pbio.ColEncRaw {
		t.Errorf("high-cardinality string column tagged %#x, want raw %#x", buf[0], pbio.ColEncRaw)
	}
}

// TestCompressedNegotiation runs the wire-compression handshake end to
// end: one subscriber requests compressed frames and one dials plain,
// both must decode the same publish to identical batches; flipping the
// broker's wire-compression knob off downgrades the requester to plain
// columnar frames mid-stream without breaking its decoder.
func TestCompressedNegotiation(t *testing.T) {
	reg := pbio.NewRegistry()
	if err := RegisterFormats(reg); err != nil {
		t.Fatal(err)
	}
	b := pubsub.NewBroker(reg)
	defer b.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(l)

	newSub := func(compress bool) *pubsub.Subscriber {
		subReg := pbio.NewRegistry()
		if err := RegisterFormats(subReg); err != nil {
			t.Fatal(err)
		}
		sub, err := pubsub.Dialer{Registry: subReg, Compress: compress}.Dial(
			l.Addr().String(), ChannelInteractions)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sub.Close() })
		return sub
	}
	zsub := newSub(true)
	plain := newSub(false)
	deadline := time.Now().Add(2 * time.Second)
	for len(b.Subscribers()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("subscribers never registered")
		}
		time.Sleep(time.Millisecond)
	}
	var sawCompressed, sawPlain bool
	for _, s := range b.Subscribers() {
		if s.Compressed {
			sawCompressed = true
		} else {
			sawPlain = true
		}
	}
	if !sawCompressed || !sawPlain {
		t.Fatalf("negotiation flags not split: %+v", b.Subscribers())
	}
	if !b.WireCompression() {
		t.Fatal("wire compression not on by default")
	}

	const rows = 64
	cols := shardLinkBatch(rows)
	want := cols.AppendTo(nil)
	recvBatch := func(sub *pubsub.Subscriber) *core.RecordColumns {
		t.Helper()
		_, rec, err := sub.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got, ok := rec.Value.(*core.RecordColumns)
		if !ok {
			t.Fatalf("decoded %T, want *core.RecordColumns", rec.Value)
		}
		if got.Len() != rows {
			t.Fatalf("decoded %d rows, want %d", got.Len(), rows)
		}
		for i, w := range want {
			if r := got.Row(i); r != w {
				t.Fatalf("row %d mismatch:\n got %+v\nwant %+v", i, r, w)
			}
		}
		return got
	}
	if err := b.PublishColumns(ChannelInteractions, cols); err != nil {
		t.Fatal(err)
	}
	recvBatch(zsub)
	recvBatch(plain)

	// The operator veto: turning the knob off downgrades the compressed
	// link to plain columnar frames; the subscriber keeps decoding.
	b.SetWireCompression(false)
	if b.WireCompression() {
		t.Fatal("SetWireCompression(false) did not stick")
	}
	if err := b.PublishColumns(ChannelInteractions, cols); err != nil {
		t.Fatal(err)
	}
	recvBatch(zsub)
	recvBatch(plain)
}

// FuzzDecodeCompressedColumns feeds arbitrary bytes to the decoder with
// the interaction column decoder bound, seeded with well-formed 0x05
// streams plus hostile mutations (truncations, bad encoding tags,
// never-terminating varints, inflated dictionary counts). The decoder
// must never panic and must terminate with an error or clean EOF.
func FuzzDecodeCompressedColumns(f *testing.F) {
	small := compressedStream(f, shardLinkBatch(5))
	f.Add(small)
	f.Add(compressedStream(f, shardLinkBatch(64)))
	f.Add(small[:len(small)-3])   // truncated mid-column
	f.Add(small[:len(small)/2])   // truncated mid-frame
	hostile := bytes.Clone(small) // valid def frame, corrupted columns
	hostile[len(hostile)/2] ^= 0xFF
	f.Add(hostile)
	// A varint that never terminates: ten continuation bytes.
	f.Add(append(bytes.Clone(small), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF))

	// Wiretaint-identified boundaries. The 0x05 frame's row count lives
	// right after the def frame: [kind][format id u32][rows u32]. Patch
	// hostile counts into the valid stream: MaxColumnReserve cap-1/cap/
	// cap+1 (the decoder's preallocation clamp), and maxBatchLen at and
	// one past the guard — the frame claims rows the columns never
	// deliver, so the decoder must error out, not allocate for them.
	defLen := func() int {
		reg := pbio.NewRegistry()
		if err := RegisterFormats(reg); err != nil {
			f.Fatal(err)
		}
		plan := reg.PlanFor(reflect.TypeOf(core.Record{}))
		return len(plan.Format().AppendDef(nil))
	}()
	patchRows := func(rows uint32) []byte {
		s := bytes.Clone(small)
		binary.LittleEndian.PutUint32(s[defLen+5:defLen+9], rows)
		return s
	}
	f.Add(patchRows(pbio.MaxColumnReserve - 1))
	f.Add(patchRows(pbio.MaxColumnReserve))
	f.Add(patchRows(pbio.MaxColumnReserve + 1))
	f.Add(patchRows(1 << 20))     // maxBatchLen: passes the guard, starves
	f.Add(patchRows(1<<20 + 1))   // maxBatchLen+1: rejected outright
	f.Add(patchRows(0xFFFF_FFFF)) // uint32 max
	// A maximal *terminated* varint (nine continuation bytes + 0x01 =
	// 2^63) where the column stream expects a count.
	f.Add(append(bytes.Clone(small), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01))

	f.Fuzz(func(t *testing.T, data []byte) {
		reg := pbio.NewRegistry()
		if err := RegisterFormats(reg); err != nil {
			t.Fatal(err)
		}
		dec := pbio.NewDecoder(bytes.NewReader(data), reg)
		for i := 0; i < 1<<16; i++ {
			if _, err := dec.Decode(); err != nil {
				return
			}
		}
	})
}
