package dissem

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"sysprof/internal/core"
	"sysprof/internal/pbio"
	"sysprof/internal/pubsub"
	"sysprof/internal/simnet"
)

func testColumnsBatch(n int) *core.RecordColumns {
	cols := core.NewRecordColumns(n)
	for i := 0; i < n; i++ {
		r := core.Record{
			ID:   uint64(i + 1),
			Node: 1,
			Flow: simnet.FlowKey{
				Src: simnet.Addr{Node: 1, Port: uint16(1000 + i)},
				Dst: simnet.Addr{Node: 2, Port: 80},
			},
			Class:      "port:80",
			CPU:        uint8(i % 4),
			Start:      time.Duration(i) * time.Millisecond,
			End:        time.Duration(i+1) * time.Millisecond,
			BufferWait: time.Duration(i) * time.Microsecond,
			ServerPID:  int32(100 + i),
			ServerProc: "httpd",
			DiskOps:    uint64(i),
		}
		cols.Append(&r)
	}
	return cols
}

// TestColumnarLegacyFallback proves the handshake downgrade: a
// subscriber that never advertised columnar support (a v0 handshake has
// no capability flags at all) must receive PublishColumns traffic as
// plain 0x03 record-batch frames its old decoder understands.
func TestColumnarLegacyFallback(t *testing.T) {
	reg := pbio.NewRegistry()
	if err := RegisterFormats(reg); err != nil {
		t.Fatal(err)
	}
	b := pubsub.NewBroker(reg)
	defer b.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(l)

	// Hand-rolled v0 handshake: a channel count byte, then each name as
	// a u32-length-prefixed string. No magic, no flags — the broker must
	// treat this subscriber as columnar-incapable.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(ChannelInteractions)))
	if _, err := conn.Write(lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(conn, ChannelInteractions); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		subs := b.Subscribers()
		if len(subs) == 1 {
			if subs[0].Columns {
				t.Fatal("v0 subscriber registered as columnar-capable")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}

	const rows = 5
	cols := testColumnsBatch(rows)
	want := cols.AppendTo(nil)
	if err := b.PublishColumns(ChannelInteractions, cols); err != nil {
		t.Fatal(err)
	}

	// Decode the raw stream with a registry that has the interaction
	// format bound but no column decoder — exactly what an old binary
	// ships. The channel header is a u32-length-prefixed string; the
	// rest is standard PBIO framing.
	subReg := pbio.NewRegistry()
	if _, err := subReg.Register("sysprof.interaction", WireRecord{}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	name := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(conn, name); err != nil {
		t.Fatal(err)
	}
	if string(name) != ChannelInteractions {
		t.Fatalf("channel header %q, want %q", name, ChannelInteractions)
	}
	dec := pbio.NewDecoder(conn, subReg)
	for i := 0; i < rows; i++ {
		rec, err := dec.Decode()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		w, ok := rec.Value.(*WireRecord)
		if !ok {
			t.Fatalf("row %d: decoded %T, want *WireRecord", i, rec.Value)
		}
		if got := FromWire(w); got != want[i] {
			t.Fatalf("row %d mismatch:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
}

// TestColumnarCapableRoundTrip is the capable-subscriber counterpart: a
// current Dial advertises columnar support, so the same publish arrives
// as one 0x04 frame and decodes back into a *core.RecordColumns batch.
func TestColumnarCapableRoundTrip(t *testing.T) {
	reg := pbio.NewRegistry()
	if err := RegisterFormats(reg); err != nil {
		t.Fatal(err)
	}
	b := pubsub.NewBroker(reg)
	defer b.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(l)

	subReg := pbio.NewRegistry()
	if err := RegisterFormats(subReg); err != nil {
		t.Fatal(err)
	}
	sub, err := pubsub.Dial(l.Addr().String(), subReg, ChannelInteractions)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	deadline := time.Now().Add(2 * time.Second)
	for len(b.Subscribers()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}
	if !b.Subscribers()[0].Columns {
		t.Fatal("current Dial did not advertise columnar support")
	}

	const rows = 5
	cols := testColumnsBatch(rows)
	want := cols.AppendTo(nil)
	if err := b.PublishColumns(ChannelInteractions, cols); err != nil {
		t.Fatal(err)
	}
	_, rec, err := sub.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rec.Value.(*core.RecordColumns)
	if !ok {
		t.Fatalf("decoded %T, want *core.RecordColumns", rec.Value)
	}
	if got.Len() != rows {
		t.Fatalf("decoded %d rows, want %d", got.Len(), rows)
	}
	for i, w := range want {
		if r := got.Row(i); r != w {
			t.Fatalf("row %d mismatch:\n got %+v\nwant %+v", i, r, w)
		}
	}
}
