package dwcs_test

import (
	"fmt"
	"time"

	"sysprof/internal/sched/dwcs"
)

// Two request classes with different deadlines and window constraints:
// DWCS serves the tighter class first at equal deadlines and drops
// expired work, counting losses per window.
func ExampleNew() {
	sched, err := dwcs.New([]dwcs.ClassConfig{
		{Name: "bidding", Deadline: 100 * time.Millisecond, X: 1, Y: 10},
		{Name: "comment", Deadline: 400 * time.Millisecond, X: 5, Y: 10},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	_ = sched.Enqueue("comment", 0, nil)
	_ = sched.Enqueue("bidding", 0, nil)

	for {
		req := sched.Next(0)
		if req == nil {
			break
		}
		fmt.Println("dispatch", req.Class)
	}
	// Output:
	// dispatch bidding
	// dispatch comment
}

// PickBackend implements RA-DWCS's resource-aware routing: requests go to
// the least-loaded server, per SysProf GPA data.
func ExamplePickBackend() {
	backend := dwcs.PickBackend([]dwcs.BackendLoad{
		{ID: "servlet-0", Pressure: 42.0}, // overloaded
		{ID: "servlet-1", Pressure: 3.5},
	})
	fmt.Println(backend)
	// Output:
	// servlet-1
}
