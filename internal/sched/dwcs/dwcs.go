// Package dwcs implements Dynamic Window-Constrained Scheduling (West &
// Schwan), the black-box request scheduler the paper's multi-tier web
// service evaluation (§3.3) uses. Each request class ("stream") has a
// request period, a relative deadline, and a window constraint x/y: at
// most x deadline misses are tolerated per window of y consecutive
// requests. DWCS orders classes by earliest deadline, breaking ties with
// the current window constraints.
//
// The resource-aware variant of the paper (RA-DWCS) composes this
// scheduler with a load-directed backend router (see PickBackend): the
// scheduler decides *which class* goes next, SysProf's GPA data decides
// *where* the request runs.
package dwcs

import (
	"fmt"
	"time"
)

// ClassConfig describes one request class.
type ClassConfig struct {
	// Name identifies the class (e.g. "bidding").
	Name string
	// Deadline is the relative deadline assigned to each request at
	// arrival.
	Deadline time.Duration
	// X is the number of deadline misses tolerated per window of Y
	// requests. Lower X/Y means a tighter (higher-priority) constraint.
	X, Y int
}

// Request is one schedulable unit.
type Request struct {
	Class    string
	Arrived  time.Duration
	Deadline time.Duration
	Payload  any
}

// ClassStats counts per-class outcomes.
type ClassStats struct {
	Enqueued   uint64
	Dispatched uint64
	// Missed counts requests dropped because their deadline passed while
	// queued. Violations counts windows whose tolerated misses were
	// exhausted (x' reached 0 and another miss occurred).
	Missed     uint64
	Violations uint64
}

// stream is a class's runtime state.
type stream struct {
	cfg ClassConfig
	// xCur and yCur are the current-window tolerances (x', y' in the
	// papers): misses still tolerated, and requests left in this window.
	xCur, yCur int
	queue      []*Request
	stats      ClassStats
}

// windowTag is the current-window constraint used for tie-breaks.
func (s *stream) ratio() float64 {
	if s.yCur == 0 {
		return 0
	}
	return float64(s.xCur) / float64(s.yCur)
}

// Scheduler is a DWCS request scheduler over a fixed set of classes.
type Scheduler struct {
	streams map[string]*stream
	order   []string // deterministic iteration order
}

// New builds a scheduler. Class Y values must be positive; X must satisfy
// 0 <= X <= Y.
func New(classes []ClassConfig) (*Scheduler, error) {
	s := &Scheduler{streams: make(map[string]*stream, len(classes))}
	for _, cfg := range classes {
		if cfg.Name == "" {
			return nil, fmt.Errorf("dwcs: class with empty name")
		}
		if cfg.Y <= 0 || cfg.X < 0 || cfg.X > cfg.Y {
			return nil, fmt.Errorf("dwcs: class %q: window %d/%d invalid", cfg.Name, cfg.X, cfg.Y)
		}
		if cfg.Deadline <= 0 {
			return nil, fmt.Errorf("dwcs: class %q: deadline must be positive", cfg.Name)
		}
		if _, ok := s.streams[cfg.Name]; ok {
			return nil, fmt.Errorf("dwcs: duplicate class %q", cfg.Name)
		}
		s.streams[cfg.Name] = &stream{cfg: cfg, xCur: cfg.X, yCur: cfg.Y}
		s.order = append(s.order, cfg.Name)
	}
	return s, nil
}

// Enqueue adds a request, stamping its absolute deadline.
func (s *Scheduler) Enqueue(class string, now time.Duration, payload any) error {
	st := s.streams[class]
	if st == nil {
		return fmt.Errorf("dwcs: unknown class %q", class)
	}
	st.stats.Enqueued++
	st.queue = append(st.queue, &Request{
		Class:    class,
		Arrived:  now,
		Deadline: now + st.cfg.Deadline,
		Payload:  payload,
	})
	return nil
}

// QueueLen returns a class's queued requests (0 for unknown classes).
func (s *Scheduler) QueueLen(class string) int {
	if st := s.streams[class]; st != nil {
		return len(st.queue)
	}
	return 0
}

// Pending returns total queued requests.
func (s *Scheduler) Pending() int {
	n := 0
	for _, st := range s.streams {
		n += len(st.queue)
	}
	return n
}

// Stats returns a class's counters.
func (s *Scheduler) Stats(class string) ClassStats {
	if st := s.streams[class]; st != nil {
		return st.stats
	}
	return ClassStats{}
}

// dropExpired removes queued requests whose deadline already passed,
// updating window state per DWCS loss accounting.
func (s *Scheduler) dropExpired(now time.Duration) {
	for _, name := range s.order {
		st := s.streams[name]
		kept := st.queue[:0]
		for _, r := range st.queue {
			if r.Deadline < now {
				st.stats.Missed++
				s.accountLoss(st)
				continue
			}
			kept = append(kept, r)
		}
		st.queue = kept
	}
}

// accountLoss records one deadline miss in the current window.
func (s *Scheduler) accountLoss(st *stream) {
	if st.xCur > 0 {
		st.xCur--
	} else {
		st.stats.Violations++
	}
	s.advanceWindow(st)
}

// accountService records one on-time service in the current window.
func (s *Scheduler) accountService(st *stream) {
	s.advanceWindow(st)
}

func (s *Scheduler) advanceWindow(st *stream) {
	st.yCur--
	if st.yCur <= 0 {
		st.xCur = st.cfg.X
		st.yCur = st.cfg.Y
	}
}

// Next pops the highest-priority request per the DWCS precedence rules:
//
//  1. earliest deadline first;
//  2. equal deadlines: lowest current window-constraint ratio x'/y' first
//     (tightest remaining tolerance);
//  3. equal ratios of zero: highest current window-denominator y' first;
//  4. equal non-zero ratios: lowest window-numerator x' first;
//  5. otherwise: class declaration order (stable FCFS).
//
// Requests whose deadlines passed are dropped (counted as misses) before
// selection. Next returns nil when no requests are queued.
func (s *Scheduler) Next(now time.Duration) *Request {
	s.dropExpired(now)
	var best *stream
	for _, name := range s.order {
		st := s.streams[name]
		if len(st.queue) == 0 {
			continue
		}
		if best == nil || precedes(st, best) {
			best = st
		}
	}
	if best == nil {
		return nil
	}
	req := best.queue[0]
	best.queue = best.queue[1:]
	best.stats.Dispatched++
	s.accountService(best)
	return req
}

// precedes reports whether a should be served before b.
func precedes(a, b *stream) bool {
	da, db := a.queue[0].Deadline, b.queue[0].Deadline
	if da != db {
		return da < db
	}
	ra, rb := a.ratio(), b.ratio()
	if ra != rb {
		return ra < rb
	}
	if ra == 0 {
		// Both exhausted tolerances: bigger remaining window first.
		if a.yCur != b.yCur {
			return a.yCur > b.yCur
		}
		return false
	}
	if a.xCur != b.xCur {
		return a.xCur < b.xCur
	}
	return false
}

// WindowState exposes a class's current (x', y') for tests and
// diagnostics.
func (s *Scheduler) WindowState(class string) (xCur, yCur int, ok bool) {
	st := s.streams[class]
	if st == nil {
		return 0, 0, false
	}
	return st.xCur, st.yCur, true
}

// BackendLoad is the scheduler-facing view of one candidate server's
// load, fed from SysProf GPA data (gpa.Load) by the caller.
type BackendLoad struct {
	ID string
	// Pressure is any monotone load signal; RA-DWCS in the paper routes
	// to the lightly loaded server. Mean residence or socket-buffer wait
	// from the GPA both work.
	Pressure float64
}

// PickBackend returns the least-loaded backend, implementing the
// "resource-aware" routing of RA-DWCS. Ties resolve to the earlier entry
// (deterministic). It returns the empty string for an empty candidate
// list.
func PickBackend(candidates []BackendLoad) string {
	if len(candidates) == 0 {
		return ""
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.Pressure < best.Pressure {
			best = c
		}
	}
	return best.ID
}
