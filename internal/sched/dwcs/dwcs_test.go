package dwcs

import (
	"testing"
	"testing/quick"
	"time"
)

func ms(d int) time.Duration { return time.Duration(d) * time.Millisecond }

func newSched(t *testing.T, classes ...ClassConfig) *Scheduler {
	t.Helper()
	s, err := New(classes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	bad := [][]ClassConfig{
		{{Name: "", Deadline: ms(1), X: 1, Y: 2}},
		{{Name: "a", Deadline: 0, X: 1, Y: 2}},
		{{Name: "a", Deadline: ms(1), X: 3, Y: 2}},
		{{Name: "a", Deadline: ms(1), X: -1, Y: 2}},
		{{Name: "a", Deadline: ms(1), X: 1, Y: 0}},
		{
			{Name: "a", Deadline: ms(1), X: 1, Y: 2},
			{Name: "a", Deadline: ms(1), X: 1, Y: 2},
		},
	}
	for i, classes := range bad {
		if _, err := New(classes); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestEnqueueUnknownClass(t *testing.T) {
	s := newSched(t, ClassConfig{Name: "a", Deadline: ms(10), X: 1, Y: 2})
	if err := s.Enqueue("nope", 0, nil); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestEarliestDeadlineFirst(t *testing.T) {
	s := newSched(t,
		ClassConfig{Name: "slow", Deadline: ms(100), X: 1, Y: 2},
		ClassConfig{Name: "fast", Deadline: ms(10), X: 1, Y: 2},
	)
	_ = s.Enqueue("slow", 0, "s")
	_ = s.Enqueue("fast", 0, "f")
	if r := s.Next(0); r.Class != "fast" {
		t.Fatalf("first dispatch = %s, want fast (EDF)", r.Class)
	}
	if r := s.Next(0); r.Class != "slow" {
		t.Fatal("second dispatch wrong")
	}
	if s.Next(0) != nil {
		t.Fatal("empty scheduler returned a request")
	}
}

func TestTieBreakLowerWindowRatio(t *testing.T) {
	// Same deadline: tighter constraint (1/4) precedes looser (3/4).
	s := newSched(t,
		ClassConfig{Name: "loose", Deadline: ms(10), X: 3, Y: 4},
		ClassConfig{Name: "tight", Deadline: ms(10), X: 1, Y: 4},
	)
	_ = s.Enqueue("loose", 0, nil)
	_ = s.Enqueue("tight", 0, nil)
	if r := s.Next(0); r.Class != "tight" {
		t.Fatalf("dispatch = %s, want tight", r.Class)
	}
}

func TestExpiredRequestsDropAndCount(t *testing.T) {
	s := newSched(t, ClassConfig{Name: "a", Deadline: ms(10), X: 1, Y: 3})
	_ = s.Enqueue("a", 0, nil)     // deadline 10ms
	_ = s.Enqueue("a", ms(5), nil) // deadline 15ms
	r := s.Next(ms(12))            // first expired, second viable
	if r == nil || r.Arrived != ms(5) {
		t.Fatalf("dispatched %+v", r)
	}
	st := s.Stats("a")
	if st.Missed != 1 || st.Dispatched != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWindowRefillsAfterYRequests(t *testing.T) {
	s := newSched(t, ClassConfig{Name: "a", Deadline: ms(10), X: 1, Y: 3})
	for i := 0; i < 3; i++ {
		_ = s.Enqueue("a", 0, nil)
		if s.Next(0) == nil {
			t.Fatal("dispatch failed")
		}
	}
	x, y, ok := s.WindowState("a")
	if !ok || x != 1 || y != 3 {
		t.Fatalf("window after full cycle = %d/%d", x, y)
	}
}

func TestViolationWhenToleranceExhausted(t *testing.T) {
	s := newSched(t, ClassConfig{Name: "a", Deadline: ms(1), X: 1, Y: 10})
	for i := 0; i < 3; i++ {
		_ = s.Enqueue("a", 0, nil)
	}
	// Everything expires: first miss consumes x'=1, further misses are
	// violations.
	if s.Next(ms(100)) != nil {
		t.Fatal("expired requests dispatched")
	}
	st := s.Stats("a")
	if st.Missed != 3 {
		t.Fatalf("missed = %d", st.Missed)
	}
	if st.Violations != 2 {
		t.Fatalf("violations = %d, want 2", st.Violations)
	}
}

func TestFCFSWithinClass(t *testing.T) {
	s := newSched(t, ClassConfig{Name: "a", Deadline: ms(50), X: 1, Y: 2})
	for i := 0; i < 3; i++ {
		_ = s.Enqueue("a", ms(i), i)
	}
	for i := 0; i < 3; i++ {
		r := s.Next(ms(10))
		if r.Payload.(int) != i {
			t.Fatalf("dispatch order broken: got %v at %d", r.Payload, i)
		}
	}
}

func TestPendingAndQueueLen(t *testing.T) {
	s := newSched(t,
		ClassConfig{Name: "a", Deadline: ms(10), X: 1, Y: 2},
		ClassConfig{Name: "b", Deadline: ms(10), X: 1, Y: 2},
	)
	_ = s.Enqueue("a", 0, nil)
	_ = s.Enqueue("a", 0, nil)
	_ = s.Enqueue("b", 0, nil)
	if s.Pending() != 3 || s.QueueLen("a") != 2 || s.QueueLen("b") != 1 {
		t.Fatalf("pending=%d a=%d b=%d", s.Pending(), s.QueueLen("a"), s.QueueLen("b"))
	}
	if s.QueueLen("zzz") != 0 {
		t.Fatal("unknown class has queue")
	}
}

func TestHighPriorityClassProtectedUnderOverload(t *testing.T) {
	// Bidding (tight window, short deadline) and comment (loose window):
	// when only half the requests can be served, bidding must get the
	// lion's share — the property Figure 7 relies on.
	s := newSched(t,
		ClassConfig{Name: "bidding", Deadline: ms(20), X: 1, Y: 10},
		ClassConfig{Name: "comment", Deadline: ms(60), X: 5, Y: 10},
	)
	served := map[string]int{}
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		_ = s.Enqueue("bidding", now, nil)
		_ = s.Enqueue("comment", now, nil)
		// Capacity for one dispatch per arrival pair: overload of 2x.
		if r := s.Next(now); r != nil {
			served[r.Class]++
		}
		now += ms(10)
	}
	if served["bidding"] <= served["comment"] {
		t.Fatalf("bidding=%d comment=%d: tight class not protected",
			served["bidding"], served["comment"])
	}
	if served["bidding"] < 150 {
		t.Fatalf("bidding served only %d/200", served["bidding"])
	}
}

func TestPickBackend(t *testing.T) {
	if PickBackend(nil) != "" {
		t.Fatal("empty candidates should return empty id")
	}
	got := PickBackend([]BackendLoad{
		{ID: "s1", Pressure: 5},
		{ID: "s2", Pressure: 2},
		{ID: "s3", Pressure: 2},
	})
	if got != "s2" {
		t.Fatalf("picked %s, want s2 (lowest, earliest tie)", got)
	}
}

// Property: window invariants hold through any dispatch/miss sequence:
// 0 <= x' <= X and 1 <= y' <= Y, and dispatched+missed == enqueued when
// drained.
func TestWindowInvariantProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		s, err := New([]ClassConfig{{Name: "a", Deadline: ms(5), X: 2, Y: 5}})
		if err != nil {
			return false
		}
		now := time.Duration(0)
		for _, op := range ops {
			now += time.Duration(op%12) * time.Millisecond
			if op%3 == 0 {
				_ = s.Enqueue("a", now, nil)
			} else {
				s.Next(now)
			}
			x, y, _ := s.WindowState("a")
			if x < 0 || x > 2 || y < 1 || y > 5 {
				return false
			}
		}
		// Drain.
		for s.Next(now+time.Hour) != nil {
		}
		st := s.Stats("a")
		return st.Dispatched+st.Missed == st.Enqueued
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
