// Package procfs provides the /proc-style virtual filesystem interface
// through which SysProf exposes monitoring data to user level ("makes it
// available to the user-level through the standard /proc virtual
// filesystem interface"). Entries are registered as content generators;
// reads always reflect current state. The tree can also be served over
// HTTP (see cmd/sysprofd) for remote inspection.
package procfs

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned when a path has no entry.
var ErrNotFound = errors.New("procfs: not found")

// Generator produces an entry's current contents.
type Generator func() string

// FS is a virtual file tree.
type FS struct {
	mu      sync.RWMutex
	entries map[string]Generator
}

// New returns an empty tree.
func New() *FS {
	return &FS{entries: make(map[string]Generator)}
}

// clean canonicalizes a path: exactly one leading slash, no trailing one.
func clean(path string) string {
	path = "/" + strings.Trim(path, "/")
	return path
}

// Register installs gen at path, replacing any previous entry.
func (fs *FS) Register(path string, gen Generator) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.entries[clean(path)] = gen
}

// Unregister removes the entry at path.
func (fs *FS) Unregister(path string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.entries, clean(path))
}

// Read returns the entry's current contents.
func (fs *FS) Read(path string) (string, error) {
	fs.mu.RLock()
	gen := fs.entries[clean(path)]
	fs.mu.RUnlock()
	if gen == nil {
		return "", fmt.Errorf("%w: %s", ErrNotFound, clean(path))
	}
	return gen(), nil
}

// List returns the sorted paths under prefix (inclusive).
func (fs *FS) List(prefix string) []string {
	prefix = clean(prefix)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.entries {
		if prefix == "/" || p == prefix || strings.HasPrefix(p, prefix+"/") {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ServeHTTP exposes the tree: GET a path for its contents, GET a prefix
// ending in "/" for a listing.
func (fs *FS) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if strings.HasSuffix(path, "/") {
		for _, p := range fs.List(path) {
			fmt.Fprintln(w, p)
		}
		return
	}
	content, err := fs.Read(path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	fmt.Fprint(w, content)
}

var _ http.Handler = (*FS)(nil)
