package procfs

import (
	"strings"
	"testing"
)

// FuzzProcfsQuery fuzzes the path normalization shared by Register,
// Read, List, and the HTTP handler. Properties: clean always yields a
// rooted, idempotent path; a registered path is readable under any
// spelling that cleans to the same name; List(prefix) includes the
// entry itself and only returns rooted paths; Unregister reverses
// Register.
func FuzzProcfsQuery(f *testing.F) {
	for _, s := range []string{
		"/sysprof/node0/lpa/0/window", "sysprof/stats", "//double//slash",
		"/", "", "...", "a/b/c/", "/trailing/", "\x00nul", "unicode/π",
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, path string) {
		if len(path) > 1024 {
			t.Skip()
		}
		c := clean(path)
		if !strings.HasPrefix(c, "/") {
			t.Fatalf("clean(%q) = %q, not rooted", path, c)
		}
		if again := clean(c); again != c {
			t.Fatalf("clean not idempotent: %q -> %q -> %q", path, c, again)
		}

		fs := New()
		fs.Register(path, func() string { return "v" })
		if got, err := fs.Read(path); err != nil || got != "v" {
			t.Fatalf("Read(%q) after Register = %q, %v", path, got, err)
		}
		if got, err := fs.Read(c); err != nil || got != "v" {
			t.Fatalf("Read(%q) (cleaned spelling) = %q, %v", c, got, err)
		}
		for _, p := range fs.List("/") {
			if !strings.HasPrefix(p, "/") {
				t.Fatalf("List returned unrooted path %q", p)
			}
		}
		if ls := fs.List(path); len(ls) != 1 || ls[0] != c {
			t.Fatalf("List(%q) = %v, want [%q]", path, ls, c)
		}
		fs.Unregister(path)
		if _, err := fs.Read(path); err == nil {
			t.Fatalf("Read(%q) after Unregister should fail", path)
		}
	})
}
