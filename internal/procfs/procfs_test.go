package procfs

import (
	"errors"
	"io"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"
)

func TestRegisterReadDynamic(t *testing.T) {
	fs := New()
	n := 0
	fs.Register("/sysprof/stats", func() string { n++; return strconv.Itoa(n) })
	if got, _ := fs.Read("/sysprof/stats"); got != "1" {
		t.Fatalf("first read = %q", got)
	}
	if got, _ := fs.Read("sysprof/stats/"); got != "2" {
		t.Fatalf("second read (unclean path) = %q", got)
	}
}

func TestReadMissing(t *testing.T) {
	fs := New()
	if _, err := fs.Read("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnregister(t *testing.T) {
	fs := New()
	fs.Register("/a", func() string { return "x" })
	fs.Unregister("/a")
	if _, err := fs.Read("/a"); err == nil {
		t.Fatal("read after unregister succeeded")
	}
}

func TestList(t *testing.T) {
	fs := New()
	for _, p := range []string{"/sysprof/lpa/0", "/sysprof/lpa/1", "/sysprof/gpa", "/other"} {
		fs.Register(p, func() string { return "" })
	}
	got := fs.List("/sysprof/lpa")
	want := []string{"/sysprof/lpa/0", "/sysprof/lpa/1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("List = %v", got)
	}
	if len(fs.List("/")) != 4 {
		t.Fatalf("root list = %v", fs.List("/"))
	}
	// Prefix must match path components, not string prefixes.
	fs.Register("/sysprof/lpa2", func() string { return "" })
	if got := fs.List("/sysprof/lpa"); len(got) != 2 {
		t.Fatalf("List matched sibling: %v", got)
	}
}

func TestServeHTTP(t *testing.T) {
	fs := New()
	fs.Register("/sysprof/version", func() string { return "1.0" })
	srv := httptest.NewServer(fs)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/sysprof/version")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "1.0" {
		t.Fatalf("body = %q", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/sysprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "/sysprof/version\n" {
		t.Fatalf("listing = %q", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
