package ecode

import (
	"fmt"
	"strconv"
)

type parser struct {
	toks []token
	pos  int
}

// Compile parses src into a Program.
func Compile(src string) (*Program, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			break
		}
	}
	p := &parser{toks: toks}
	var stmts []stmt
	for !p.at(tokEOF, "") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return &Program{body: stmts}, nil
}

// MustCompile is Compile, panicking on error (static-program use).
func MustCompile(src string) *Program {
	prog, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) line() int  { return p.cur().line }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("expected %q, found %q", want, t.text)}
	}
	p.advance()
	return t, nil
}

func isTypeName(s string) bool {
	return s == "int" || s == "float" || s == "bool" || s == "string"
}

func (p *parser) stmt() (stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tokKeyword && (t.text == "static" || isTypeName(t.text)):
		return p.declStmt(true)
	case t.kind == tokKeyword && t.text == "if":
		return p.ifStmt()
	case t.kind == tokKeyword && t.text == "for":
		return p.forStmt()
	case t.kind == tokKeyword && t.text == "while":
		return p.whileStmt()
	case t.kind == tokKeyword && t.text == "return":
		p.advance()
		rs := &returnStmt{line: t.line}
		if !p.at(tokPunct, ";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			rs.val = e
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return rs, nil
	case t.kind == tokKeyword && t.text == "break":
		p.advance()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &breakStmt{line: t.line}, nil
	case t.kind == tokKeyword && t.text == "continue":
		p.advance()
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &continueStmt{line: t.line}, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// declStmt parses "static? type name (= expr)? ;".
func (p *parser) declStmt(wantSemi bool) (stmt, error) {
	line := p.line()
	static := p.accept(tokKeyword, "static")
	t := p.cur()
	if t.kind != tokKeyword || !isTypeName(t.text) {
		return nil, &SyntaxError{Line: t.line, Msg: "expected type name"}
	}
	p.advance()
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	d := &declStmt{typ: t.text, static: static, name: name.text, line: line}
	if p.accept(tokPunct, "=") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.init = e
	}
	if wantSemi {
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// simpleStmt parses an assignment, ++/--, or expression (no semicolon).
func (p *parser) simpleStmt() (stmt, error) {
	if p.at(tokKeyword, "static") || (p.cur().kind == tokKeyword && isTypeName(p.cur().text)) {
		return p.declStmt(false)
	}
	if p.cur().kind == tokIdent && p.pos+1 < len(p.toks) {
		next := p.toks[p.pos+1]
		if next.kind == tokPunct {
			switch next.text {
			case "=", "+=", "-=", "*=", "/=":
				name := p.cur()
				p.advance()
				p.advance()
				val, err := p.expr()
				if err != nil {
					return nil, err
				}
				return &assignStmt{name: name.text, op: next.text, val: val, line: name.line}, nil
			case "++", "--":
				name := p.cur()
				p.advance()
				p.advance()
				op := "+="
				if next.text == "--" {
					op = "-="
				}
				return &assignStmt{name: name.text, op: op, val: &intLit{v: 1}, line: name.line}, nil
			}
		}
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &exprStmt{e: e, line: p.line()}, nil
}

func (p *parser) block() ([]stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []stmt
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, &SyntaxError{Line: p.line(), Msg: "unterminated block"}
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.advance()
	return stmts, nil
}

func (p *parser) ifStmt() (stmt, error) {
	line := p.line()
	p.advance() // "if"
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	is := &ifStmt{cond: cond, then: then, line: line}
	if p.accept(tokKeyword, "else") {
		if p.at(tokKeyword, "if") {
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			is.els = []stmt{nested}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			is.els = els
		}
	}
	return is, nil
}

func (p *parser) forStmt() (stmt, error) {
	line := p.line()
	p.advance() // "for"
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	fs := &forStmt{line: line}
	if !p.at(tokPunct, ";") {
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		fs.init = s
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ";") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		fs.cond = e
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ")") {
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		fs.post = s
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fs.body = body
	return fs, nil
}

// whileStmt parses "while (cond) { ... }" as sugar for a for loop.
func (p *parser) whileStmt() (stmt, error) {
	line := p.line()
	p.advance() // "while"
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &forStmt{cond: cond, body: body, line: line}, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3, "<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expr() (expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.text]
		if t.kind != tokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: t.text, l: lhs, r: rhs, line: t.line}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: t.text, x: x, line: t.line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, ".") {
		p.advance()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		e = &fieldExpr{recv: e, field: name.text, line: name.line}
	}
	return e, nil
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, &SyntaxError{Line: t.line, Msg: "bad integer literal"}
		}
		return &intLit{v: v}, nil
	case t.kind == tokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, &SyntaxError{Line: t.line, Msg: "bad float literal"}
		}
		return &floatLit{v: v}, nil
	case t.kind == tokString:
		p.advance()
		return &stringLit{v: t.text}, nil
	case t.kind == tokKeyword && t.text == "true":
		p.advance()
		return &boolLit{v: true}, nil
	case t.kind == tokKeyword && t.text == "false":
		p.advance()
		return &boolLit{v: false}, nil
	case t.kind == tokIdent:
		p.advance()
		if p.at(tokPunct, "(") {
			p.advance()
			var args []expr
			for !p.at(tokPunct, ")") {
				if len(args) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			p.advance()
			return &callExpr{name: t.text, args: args, line: t.line}, nil
		}
		return &identExpr{name: t.text, line: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("unexpected token %q", t.text)}
}
