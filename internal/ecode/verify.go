package ecode

// verify.go is the E-Code static verifier: the gate every custom
// analyzer must pass before it is installed on the kernel event fast
// path. The paper's CPA story is analyzers "dynamically created and
// downloaded into the kernel" — which, like eBPF, is only safe if an
// uploaded program provably cannot block, allocate without bound, or
// loop forever. The verifier proves those properties on the AST, before
// any instruction runs:
//
//	typecheck    full static typing over the int/float/bool/string
//	             lattice; record-field access is validated against the
//	             registered host schema (unknown fields, mixed-type
//	             operands and mistyped builtin arguments are rejected)
//	termination  every loop must have a statically derivable worst-case
//	             iteration count (constant-bounded counter with a
//	             constant step); anything unbounded is rejected instead
//	             of trusting the interpreter's runtime step limit
//	noalloc      string concatenation inside loops and unbounded growth
//	             of persistent (static) strings are rejected
//	noblock      every builtin is classified blocking/nonblocking in a
//	             signature table; calls to blocking builtins are rejected
//	cost         a worst-case per-event step count is derived from the
//	             proven loop bounds and the builtin cost table, reported
//	             in the verdict, and checked against a ceiling
//
// Diagnostics are lint.Diagnostic values, so the verdict renders in
// sysproflint's evidence-chain shape (file:line:col first line plus
// indented supporting frames) and CLI/CI output stays uniform.

import (
	"fmt"
	gotoken "go/token"
	"sort"
	"strings"

	"sysprof/internal/lint"
)

// Type is one point of the E-Code static type lattice.
type Type uint8

const (
	TInvalid Type = iota
	TInt
	TFloat
	TBool
	TString
	TRecord
)

// String names the type the way E-Code source spells it.
func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TString:
		return "string"
	case TRecord:
		return "record"
	}
	return "invalid"
}

func typeFromName(name string) Type {
	switch name {
	case "int":
		return TInt
	case "float":
		return TFloat
	case "bool":
		return TBool
	case "string":
		return TString
	}
	return TInvalid
}

// RecordSchema declares the fields a host record exposes and their
// types. Field access on a bound record is verified against it.
type RecordSchema map[string]Type

// ParamKind constrains one builtin parameter.
type ParamKind uint8

const (
	// PNum accepts int or float.
	PNum ParamKind = iota
	// PString accepts string.
	PString
	// PAny accepts any value, including records (emit's payload).
	PAny
)

// ResultKind determines a builtin call's static result type.
type ResultKind uint8

const (
	RInt ResultKind = iota
	RFloat
	RBool
	RString
	// RArg0 types the result like the first argument (abs, min, max).
	// With Variadic set, every argument must share the first one's type,
	// because the runtime returns whichever argument wins.
	RArg0
)

// BuiltinSig classifies one builtin for the verifier: parameter and
// result typing, the blocking/nonblocking classification the noblock
// pass enforces, and the worst-case step cost one call charges.
type BuiltinSig struct {
	Params   []ParamKind
	Variadic bool // last param may repeat (at least one argument total)
	Result   ResultKind
	Blocking bool // true: never allowed on the event fast path
	Cost     int  // worst-case steps charged per call (0 counts as 1)
}

// StandardSigs is the builtin signature table for the default runtime
// (see defaultBuiltins). It also declares the host's slow-path
// functions — sleep, readproc, log — which exist for offline E-Code
// tooling and are classified blocking, so the verifier rejects any
// analyzer that tries to call them per event.
func StandardSigs() map[string]BuiltinSig {
	return map[string]BuiltinSig{
		"len":      {Params: []ParamKind{PString}, Result: RInt, Cost: 1},
		"abs":      {Params: []ParamKind{PNum}, Result: RArg0, Cost: 1},
		"min":      {Params: []ParamKind{PNum}, Variadic: true, Result: RArg0, Cost: 2},
		"max":      {Params: []ParamKind{PNum}, Variadic: true, Result: RArg0, Cost: 2},
		"contains": {Params: []ParamKind{PString, PString}, Result: RBool, Cost: 8},

		// Slow-path host functions: blocking by classification.
		"sleep":    {Params: []ParamKind{PNum}, Result: RInt, Blocking: true, Cost: 1},
		"readproc": {Params: []ParamKind{PString}, Result: RString, Blocking: true, Cost: 1},
		"log":      {Params: []ParamKind{PString}, Result: RInt, Blocking: true, Cost: 1},
	}
}

// DefaultMaxCost is the per-event worst-case step ceiling when
// VerifyEnv.MaxCost is zero. It is far below the interpreter's runtime
// step limit: a verified analyzer can never come near that limit.
const DefaultMaxCost = 50_000

// Verifier pass names, as they appear in Diagnostic.Analyzer and in
// VerifyEnv.Disable.
const (
	PassTypecheck   = "typecheck"
	PassTermination = "termination"
	PassNoAlloc     = "noalloc"
	PassNoBlock     = "noblock"
	PassCost        = "cost"
)

// VerifyEnv is the static environment an analyzer is verified against:
// the records it may touch, the builtins it may call, and the cost
// ceiling it must fit under.
type VerifyEnv struct {
	// Name labels diagnostics (every finding's Pos.Filename). Pass the
	// analyzer's name or source path; empty means "analyzer".
	Name string
	// Records maps binding names (e.g. "ev") to their field schemas.
	Records map[string]RecordSchema
	// Builtins extends or overrides StandardSigs for this environment
	// (e.g. the CPA host adds emit).
	Builtins map[string]BuiltinSig
	// MaxCost rejects analyzers whose worst-case per-event step count
	// exceeds it; zero means DefaultMaxCost.
	MaxCost int
	// Disable names verifier passes to skip (PassTypecheck, ...).
	// Mutation tests use it to prove each pass has teeth on its own;
	// production callers must leave it empty.
	Disable []string
}

func (env *VerifyEnv) name() string {
	if env.Name == "" {
		return "analyzer"
	}
	return env.Name
}

func (env *VerifyEnv) maxCost() int {
	if env.MaxCost <= 0 {
		return DefaultMaxCost
	}
	return env.MaxCost
}

// sigs merges the standard builtin table with the environment's.
func (env *VerifyEnv) sigs() map[string]BuiltinSig {
	out := StandardSigs()
	for k, v := range env.Builtins {
		out[k] = v
	}
	return out
}

// Verdict is the verifier's decision on one program.
type Verdict struct {
	// OK is true when every enabled pass accepted the program.
	OK bool
	// Cost is the statically derived worst-case step count per event
	// (statements + expression nodes + builtin table costs), an upper
	// bound on the interpreter's own step counter.
	Cost int
	// Diags are the findings, sorted by line, in sysproflint's
	// evidence-chain shape.
	Diags []lint.Diagnostic
}

// Render returns every diagnostic with its evidence chain, one finding
// per paragraph, the way the sysproflint CLI prints them.
func (v *Verdict) Render() string {
	parts := make([]string, len(v.Diags))
	for i, d := range v.Diags {
		parts[i] = d.Detail()
	}
	return strings.Join(parts, "\n")
}

// Err returns nil when the program verified, or an error carrying the
// rendered diagnostics.
func (v *Verdict) Err() error {
	if v.OK {
		return nil
	}
	return fmt.Errorf("verification failed:\n%s", v.Render())
}

// Verify statically checks the program against env and returns the
// verdict. It never executes the program.
func (p *Program) Verify(env VerifyEnv) *Verdict {
	vf := &verifier{
		env:     env,
		sigs:    env.sigs(),
		statics: map[string]Type{},
		consts:  map[string]constVal{},
	}
	disabled := make(map[string]bool, len(env.Disable))
	for _, p := range env.Disable {
		disabled[p] = true
	}

	root := &vscope{vars: map[string]Type{}}
	for name := range env.Records {
		root.vars[name] = TRecord
	}
	vf.sc = &vscope{vars: map[string]Type{}, parent: root}
	cost := vf.checkBlock(p.body)
	if cost > env.maxCost() {
		vf.reportChain(PassCost, 1,
			[]lint.ChainFrame{vf.frame(1, fmt.Sprintf("ceiling is %d steps per event; shrink loop bounds or split the analyzer", env.maxCost()))},
			"worst-case per-event cost %d exceeds the verifier ceiling", cost)
	}

	kept := vf.diags[:0]
	for _, d := range vf.diags {
		if !disabled[d.Analyzer] {
			kept = append(kept, d)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Pos.Line < kept[j].Pos.Line })
	return &Verdict{OK: len(kept) == 0, Cost: cost, Diags: kept}
}

// vscope is a static scope: variable name to type, chained like the
// interpreter's runtime scopes so shadowing resolves identically.
type vscope struct {
	vars   map[string]Type
	parent *vscope
}

func (s *vscope) lookup(name string) (Type, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if t, ok := cur.vars[name]; ok {
			return t, true
		}
	}
	return TInvalid, false
}

// constVal is a statically known int value used for loop-bound
// inference ("constant propagation lite": only straight-line constant
// decls and assignments are tracked).
type constVal struct {
	known bool
	v     int64
}

type verifier struct {
	env  VerifyEnv
	sigs map[string]BuiltinSig

	sc      *vscope
	statics map[string]Type
	// consts maps variable names to statically known int values in the
	// current straight-line context; any write the verifier cannot fold
	// clears the entry.
	consts map[string]constVal
	// loops is the stack of enclosing loop lines (for noalloc evidence).
	loops []int

	diags []lint.Diagnostic
}

func (vf *verifier) pos(line int) gotoken.Position {
	return gotoken.Position{Filename: vf.env.name(), Line: line, Column: 1}
}

func (vf *verifier) frame(line int, msg string) lint.ChainFrame {
	return lint.ChainFrame{Pos: vf.pos(line), Msg: msg}
}

func (vf *verifier) report(pass string, line int, format string, args ...any) {
	vf.reportChain(pass, line, nil, format, args...)
}

func (vf *verifier) reportChain(pass string, line int, chain []lint.ChainFrame, format string, args ...any) {
	vf.diags = append(vf.diags, lint.Diagnostic{
		Pos:      vf.pos(line),
		Analyzer: pass,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// maxVerifyCost saturates cost arithmetic so absurd nested bounds do not
// overflow into acceptance.
const maxVerifyCost = 1 << 40

func addCost(a, b int) int {
	if s := a + b; s >= 0 && s < maxVerifyCost {
		return s
	}
	return maxVerifyCost
}

func mulCost(a int, b int64) int {
	if a <= 0 || b <= 0 {
		return 0
	}
	if int64(a) > maxVerifyCost/b {
		return maxVerifyCost
	}
	return a * int(b)
}

// checkBlock verifies a statement sequence in the current scope and
// returns its worst-case cost.
func (vf *verifier) checkBlock(stmts []stmt) int {
	cost := 0
	for _, s := range stmts {
		cost = addCost(cost, vf.checkStmt(s))
	}
	return cost
}

func (vf *verifier) checkStmt(s stmt) int {
	switch n := s.(type) {
	case *declStmt:
		return vf.checkDecl(n)
	case *assignStmt:
		return vf.checkAssign(n)
	case *ifStmt:
		condT, condCost := vf.checkExpr(n.cond)
		if condT != TBool && condT != TInvalid {
			vf.report(PassTypecheck, n.line, "if condition is %s, not bool", condT)
		}
		// Branch scopes mirror the interpreter's.
		vf.sc = &vscope{vars: map[string]Type{}, parent: vf.sc}
		thenCost := vf.checkBlock(n.then)
		vf.sc.vars = map[string]Type{}
		elseCost := vf.checkBlock(n.els)
		vf.sc = vf.sc.parent
		// A conditional write is not a statically known value.
		vf.clearAssigned(n.then)
		vf.clearAssigned(n.els)
		branch := thenCost
		if elseCost > branch {
			branch = elseCost
		}
		return addCost(1, addCost(condCost, branch))
	case *forStmt:
		return vf.checkFor(n)
	case *returnStmt:
		cost := 1
		if n.val != nil {
			t, c := vf.checkExpr(n.val)
			if t == TRecord {
				vf.report(PassTypecheck, n.line, "cannot return a record")
			}
			cost = addCost(cost, c)
		}
		return cost
	case *exprStmt:
		_, c := vf.checkExpr(n.e)
		return addCost(1, c)
	case *breakStmt, *continueStmt:
		return 1
	}
	return 1
}

func (vf *verifier) checkDecl(n *declStmt) int {
	t := typeFromName(n.typ)
	cost := 1
	if n.init != nil {
		it, c := vf.checkExpr(n.init)
		cost = addCost(cost, c)
		if !initCompatible(t, it) && it != TInvalid {
			vf.report(PassTypecheck, n.line, "cannot initialize %s %q with %s", t, n.name, it)
		}
	}
	if n.static {
		if old, ok := vf.statics[n.name]; ok && old != t {
			vf.report(PassTypecheck, n.line, "static %q redeclared as %s (previously %s)", n.name, t, old)
		}
		vf.statics[n.name] = t
		// Statics persist across events with values the verifier cannot
		// know; never constant-fold them.
		vf.consts[n.name] = constVal{}
		return cost
	}
	vf.sc.vars[n.name] = t
	if t == TInt {
		if v, ok := vf.constIntOf(n.init); ok {
			vf.consts[n.name] = constVal{known: true, v: v}
			return cost
		}
	}
	vf.consts[n.name] = constVal{}
	return cost
}

// initCompatible mirrors the interpreter's coerce: int and float
// initialize each other (with truncation), bool and string are strict.
func initCompatible(decl, init Type) bool {
	switch decl {
	case TInt, TFloat:
		return init == TInt || init == TFloat
	default:
		return decl == init
	}
}

func (vf *verifier) checkAssign(n *assignStmt) int {
	vt, where := vf.resolveVar(n.name)
	et, cost := vf.checkExpr(n.val)
	cost = addCost(1, cost)
	switch where {
	case varMissing:
		vf.report(PassTypecheck, n.line, "assignment to undeclared variable %q", n.name)
		return cost
	case varBinding:
		vf.report(PassTypecheck, n.line, "cannot assign to host binding %q", n.name)
		return cost
	}
	if et == TInvalid || vt == TInvalid {
		return cost
	}
	if n.op == "=" {
		// Plain assignment replaces the value without coercion at
		// runtime, so the types must match exactly or the variable's
		// static type would be a lie.
		if et != vt {
			vf.report(PassTypecheck, n.line, "cannot assign %s to %s %q", et, vt, n.name)
			return cost
		}
	} else {
		binOp := strings.TrimSuffix(n.op, "=")
		rt := vf.binaryResultType(binOp, vt, et, n.line)
		if rt == TInvalid {
			return cost
		}
		if rt != vt {
			vf.report(PassTypecheck, n.line, "%s changes %s %q to %s", n.op, vt, n.name, rt)
			return cost
		}
	}
	vf.checkStringGrowth(n, vt, where)
	vf.foldAssign(n, vt, where)
	return cost
}

// checkStringGrowth is the noalloc pass's assignment rule: appending to
// any string inside a loop allocates per iteration, and appending to a
// static string anywhere grows it without bound across events (statics
// persist for the analyzer's lifetime).
func (vf *verifier) checkStringGrowth(n *assignStmt, vt Type, where varWhere) {
	if vt != TString {
		return
	}
	grows := n.op == "+="
	if !grows && n.op == "=" {
		grows = vf.containsStringConcat(n.val)
	}
	if !grows {
		return
	}
	if where == varStatic {
		vf.reportChain(PassNoAlloc, n.line,
			[]lint.ChainFrame{vf.frame(n.line, fmt.Sprintf("static %q persists across events; every event appends", n.name))},
			"static string %q grows without bound", n.name)
		return
	}
	if len(vf.loops) > 0 {
		loopLine := vf.loops[len(vf.loops)-1]
		vf.reportChain(PassNoAlloc, n.line,
			[]lint.ChainFrame{vf.frame(loopLine, "enclosing loop starts here")},
			"string concatenation in a loop allocates per iteration")
	}
}

// containsStringConcat reports whether e contains a string "+".
func (vf *verifier) containsStringConcat(e expr) bool {
	b, ok := e.(*binaryExpr)
	if !ok {
		return false
	}
	if b.op == "+" {
		if lt, _ := vf.typeOnly(b.l); lt == TString {
			return true
		}
	}
	return vf.containsStringConcat(b.l) || vf.containsStringConcat(b.r)
}

// foldAssign updates the constant environment after an assignment.
func (vf *verifier) foldAssign(n *assignStmt, vt Type, where varWhere) {
	if where != varLocal || vt != TInt {
		return
	}
	if n.op == "=" {
		if v, ok := vf.constIntOf(n.val); ok {
			vf.consts[n.name] = constVal{known: true, v: v}
			return
		}
	}
	vf.consts[n.name] = constVal{}
}

type varWhere uint8

const (
	varMissing varWhere = iota
	varLocal
	varStatic
	varBinding
)

// resolveVar finds a name the way the interpreter does: scope chain
// first (which includes host bindings at the root), then statics.
func (vf *verifier) resolveVar(name string) (Type, varWhere) {
	for cur := vf.sc; cur != nil; cur = cur.parent {
		if t, ok := cur.vars[name]; ok {
			if t == TRecord && cur.parent == nil {
				return t, varBinding
			}
			return t, varLocal
		}
	}
	if t, ok := vf.statics[name]; ok {
		return t, varStatic
	}
	return TInvalid, varMissing
}

// constIntOf statically evaluates an int expression: literals, known
// constants, unary minus, and the four int arithmetic ops.
func (vf *verifier) constIntOf(e expr) (int64, bool) {
	switch n := e.(type) {
	case *intLit:
		return n.v, true
	case *identExpr:
		if c, ok := vf.consts[n.name]; ok && c.known {
			// Only trust the entry if the name still resolves to a local
			// int (a shadow may have changed its meaning).
			if t, w := vf.resolveVar(n.name); w == varLocal && t == TInt {
				return c.v, true
			}
		}
	case *unaryExpr:
		if n.op == "-" {
			if v, ok := vf.constIntOf(n.x); ok {
				return -v, true
			}
		}
	case *binaryExpr:
		l, lok := vf.constIntOf(n.l)
		r, rok := vf.constIntOf(n.r)
		if lok && rok {
			switch n.op {
			case "+":
				return l + r, true
			case "-":
				return l - r, true
			case "*":
				return l * r, true
			case "/":
				if r != 0 {
					return l / r, true
				}
			case "%":
				if r != 0 {
					return l % r, true
				}
			}
		}
	}
	return 0, false
}

// clearAssigned forgets constant knowledge for every variable a
// statement list may write (used after conditional branches and loops).
func (vf *verifier) clearAssigned(stmts []stmt) {
	for _, s := range stmts {
		switch n := s.(type) {
		case *assignStmt:
			vf.consts[n.name] = constVal{}
		case *declStmt:
			vf.consts[n.name] = constVal{}
		case *ifStmt:
			vf.clearAssigned(n.then)
			vf.clearAssigned(n.els)
		case *forStmt:
			if n.init != nil {
				vf.clearAssigned([]stmt{n.init})
			}
			if n.post != nil {
				vf.clearAssigned([]stmt{n.post})
			}
			vf.clearAssigned(n.body)
		}
	}
}

// checkFor verifies one loop: its bound (termination pass), its body,
// and its contribution to the worst-case cost.
func (vf *verifier) checkFor(n *forStmt) int {
	vf.sc = &vscope{vars: map[string]Type{}, parent: vf.sc}
	defer func() { vf.sc = vf.sc.parent }()

	initCost := 0
	if n.init != nil {
		initCost = vf.checkStmt(n.init)
	}

	// Loop-bound inference runs against the constant environment as it
	// stands at loop entry (after init).
	iters, why, whyLine := vf.loopBound(n)

	condCost := 0
	if n.cond != nil {
		ct, c := vf.checkExpr(n.cond)
		if ct != TBool && ct != TInvalid {
			vf.report(PassTypecheck, n.line, "for condition is %s, not bool", ct)
		}
		condCost = c
	}

	vf.loops = append(vf.loops, n.line)
	// Values written inside the loop are unknown from the second
	// iteration on; forget them before checking the body so nested
	// loop bounds cannot lean on them.
	vf.clearAssigned(n.body)
	if n.post != nil {
		vf.clearAssigned([]stmt{n.post})
	}
	bodyCost := vf.checkBlock(n.body)
	postCost := 0
	if n.post != nil {
		postCost = vf.checkStmt(n.post)
	}
	vf.loops = vf.loops[:len(vf.loops)-1]

	if iters < 0 {
		vf.reportChain(PassTermination, n.line,
			[]lint.ChainFrame{
				vf.frame(whyLine, why),
				vf.frame(n.line, "analyzers run per kernel event; the compiled fast path has no runtime step limit to fall back on"),
			},
			"loop is not provably bounded")
		iters = 0 // keep the cost estimate well-defined for the verdict
	}

	perIter := addCost(condCost, addCost(bodyCost, addCost(postCost, 1)))
	total := addCost(initCost, addCost(mulCost(perIter, iters), addCost(condCost, 1)))
	return total
}

// loopBound infers the worst-case iteration count of a loop from the
// pattern the verifier accepts: an int counter with a statically known
// initial value, a comparison against a statically known limit, and
// exactly one unconditional constant-step update per iteration. It
// returns -1 and a reason when no bound can be proven.
func (vf *verifier) loopBound(n *forStmt) (iters int64, why string, whyLine int) {
	if n.cond == nil {
		return -1, "loop has no condition", n.line
	}
	cmp, ok := n.cond.(*binaryExpr)
	if !ok {
		return -1, "loop condition is not a comparison the verifier can bound", n.line
	}
	var counter string
	var counterLine int
	var limit int64
	var op string
	switch {
	case vf.isIntIdent(cmp.l) != "":
		counter = vf.isIntIdent(cmp.l)
		counterLine = cmp.l.(*identExpr).line
		v, ok := vf.constIntOf(cmp.r)
		if !ok {
			return -1, fmt.Sprintf("loop limit %s is not a statically known int", exprDesc(cmp.r)), cmp.line
		}
		limit, op = v, cmp.op
	case vf.isIntIdent(cmp.r) != "":
		counter = vf.isIntIdent(cmp.r)
		counterLine = cmp.r.(*identExpr).line
		v, ok := vf.constIntOf(cmp.l)
		if !ok {
			return -1, fmt.Sprintf("loop limit %s is not a statically known int", exprDesc(cmp.l)), cmp.line
		}
		// Mirror the comparison so the counter is on the left.
		limit = v
		op = map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}[cmp.op]
	default:
		return -1, "loop condition does not compare an int counter against a constant", cmp.line
	}
	switch op {
	case "<", "<=", ">", ">=":
	default:
		return -1, fmt.Sprintf("comparison %q does not bound the counter", cmp.op), cmp.line
	}

	start, ok := vf.consts[counter], vf.consts[counter].known
	if !ok {
		return -1, fmt.Sprintf("counter %q has no statically known initial value", counter), counterLine
	}

	step, stepOK, extraWrite := loopStep(counter, n)
	if extraWrite {
		return -1, fmt.Sprintf("counter %q is reassigned inside the loop body", counter), n.line
	}
	if !stepOK {
		return -1, fmt.Sprintf("no unconditional constant step for counter %q", counter), n.line
	}
	if step == 0 {
		return -1, fmt.Sprintf("counter %q steps by zero", counter), n.line
	}
	if (op == "<" || op == "<=") && step < 0 {
		return -1, fmt.Sprintf("counter %q steps away from its bound", counter), n.line
	}
	if (op == ">" || op == ">=") && step > 0 {
		return -1, fmt.Sprintf("counter %q steps away from its bound", counter), n.line
	}

	span := limit - start.v
	if op == ">" || op == ">=" {
		span, step = -span, -step
	}
	switch op {
	case "<", ">":
		if span <= 0 {
			return 0, "", 0
		}
		return (span + step - 1) / step, "", 0
	default: // "<=", ">="
		if span < 0 {
			return 0, "", 0
		}
		return span/step + 1, "", 0
	}
}

// loopStep finds the loop counter's per-iteration step: the post
// statement or exactly one unconditional top-level body update with a
// constant delta. extraWrite reports any other write to the counter.
func loopStep(counter string, n *forStmt) (step int64, ok, extraWrite bool) {
	countWrites := func(stmts []stmt, unconditional bool) {
		var walk func(ss []stmt, uncond bool)
		walk = func(ss []stmt, uncond bool) {
			for _, s := range ss {
				switch a := s.(type) {
				case *assignStmt:
					if a.name != counter {
						continue
					}
					var d int64
					lit, isLit := a.val.(*intLit)
					switch {
					case a.op == "+=" && isLit:
						d = lit.v
					case a.op == "-=" && isLit:
						d = -lit.v
					default:
						extraWrite = true
						continue
					}
					if !uncond || ok {
						// A second update, or a conditional one, leaves
						// the true per-iteration delta unknown.
						extraWrite = true
						continue
					}
					step, ok = d, true
				case *declStmt:
					if a.name == counter {
						extraWrite = true
					}
				case *ifStmt:
					walk(a.then, false)
					walk(a.els, false)
				case *forStmt:
					if a.init != nil {
						walk([]stmt{a.init}, false)
					}
					if a.post != nil {
						walk([]stmt{a.post}, false)
					}
					walk(a.body, false)
				}
			}
		}
		walk(stmts, unconditional)
	}

	if n.post != nil {
		countWrites([]stmt{n.post}, true)
		countWrites(n.body, false)
	} else {
		countWrites(n.body, true)
	}
	if extraWrite {
		return 0, false, true
	}
	return step, ok, false
}

// isIntIdent returns the name when e is an identifier currently typed
// int, else "".
func (vf *verifier) isIntIdent(e expr) string {
	id, ok := e.(*identExpr)
	if !ok {
		return ""
	}
	t, w := vf.resolveVar(id.name)
	if t == TInt && (w == varLocal || w == varStatic) {
		return id.name
	}
	return ""
}

func exprDesc(e expr) string {
	switch n := e.(type) {
	case *identExpr:
		return fmt.Sprintf("%q", n.name)
	case *fieldExpr:
		return fmt.Sprintf("%q", "."+n.field)
	}
	return "expression"
}

// typeOnly types an expression without reporting diagnostics or
// charging cost (used for noalloc's concat detection).
func (vf *verifier) typeOnly(e expr) (Type, bool) {
	saved := vf.diags
	t, _ := vf.checkExpr(e)
	vf.diags = saved
	return t, t != TInvalid
}

// checkExpr types an expression, reports violations, and returns its
// static type plus its worst-case evaluation cost.
func (vf *verifier) checkExpr(e expr) (Type, int) {
	switch n := e.(type) {
	case *intLit:
		return TInt, 1
	case *floatLit:
		return TFloat, 1
	case *boolLit:
		return TBool, 1
	case *stringLit:
		return TString, 1

	case *identExpr:
		t, w := vf.resolveVar(n.name)
		if w == varMissing {
			vf.report(PassTypecheck, n.line, "undefined variable %q", n.name)
			return TInvalid, 1
		}
		return t, 1

	case *fieldExpr:
		return vf.checkField(n)

	case *callExpr:
		return vf.checkCall(n)

	case *unaryExpr:
		t, c := vf.checkExpr(n.x)
		c = addCost(c, 1)
		switch n.op {
		case "-":
			if t == TInt || t == TFloat || t == TInvalid {
				return t, c
			}
			vf.report(PassTypecheck, n.line, "unary - on %s", t)
		case "!":
			if t == TBool || t == TInvalid {
				return TBool, c
			}
			vf.report(PassTypecheck, n.line, "unary ! on %s", t)
		}
		return TInvalid, c

	case *binaryExpr:
		lt, lc := vf.checkExpr(n.l)
		rt, rc := vf.checkExpr(n.r)
		cost := addCost(1, addCost(lc, rc))
		if lt == TInvalid || rt == TInvalid {
			return TInvalid, cost
		}
		t := vf.binaryResultType(n.op, lt, rt, n.line)
		if t == TString && n.op == "+" && len(vf.loops) > 0 {
			loopLine := vf.loops[len(vf.loops)-1]
			vf.reportChain(PassNoAlloc, n.line,
				[]lint.ChainFrame{vf.frame(loopLine, "enclosing loop starts here")},
				"string concatenation in a loop allocates per iteration")
		}
		return t, cost
	}
	return TInvalid, 1
}

func (vf *verifier) checkField(n *fieldExpr) (Type, int) {
	id, ok := n.recv.(*identExpr)
	if !ok {
		if t, _ := vf.checkExpr(n.recv); t != TInvalid {
			vf.report(PassTypecheck, n.line, "field access on non-record %s", t)
		}
		return TInvalid, 2
	}
	t, w := vf.resolveVar(id.name)
	if w == varMissing {
		vf.report(PassTypecheck, n.line, "undefined variable %q", id.name)
		return TInvalid, 2
	}
	if t != TRecord {
		vf.report(PassTypecheck, n.line, "field access on %s %q (not a record)", t, id.name)
		return TInvalid, 2
	}
	schema := vf.env.Records[id.name]
	ft, ok := schema[n.field]
	if !ok {
		vf.reportChain(PassTypecheck, n.line,
			[]lint.ChainFrame{vf.frame(n.line, "schema fields: "+schemaFields(schema))},
			"record %q has no field %q", id.name, n.field)
		return TInvalid, 2
	}
	return ft, 2
}

func schemaFields(s RecordSchema) string {
	names := make([]string, 0, len(s))
	for f := range s {
		names = append(names, f)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func (vf *verifier) checkCall(n *callExpr) (Type, int) {
	cost := 1
	argTypes := make([]Type, len(n.args))
	for i, a := range n.args {
		t, c := vf.checkExpr(a)
		argTypes[i] = t
		cost = addCost(cost, c)
	}
	sig, ok := vf.sigs[n.name]
	if !ok {
		vf.report(PassTypecheck, n.line, "unknown function %q", n.name)
		return TInvalid, cost
	}
	if sig.Cost > 0 {
		cost = addCost(cost, sig.Cost)
	}
	if sig.Blocking {
		vf.reportChain(PassNoBlock, n.line,
			[]lint.ChainFrame{vf.frame(n.line, fmt.Sprintf("%s is classified blocking in the builtin table; analyzers run on the kernel event fast path", n.name))},
			"call to blocking builtin %q", n.name)
	}
	if sig.Variadic {
		if len(n.args) < len(sig.Params) {
			vf.report(PassTypecheck, n.line, "%s wants at least %d arg(s), got %d", n.name, len(sig.Params), len(n.args))
			return TInvalid, cost
		}
	} else if len(n.args) != len(sig.Params) {
		vf.report(PassTypecheck, n.line, "%s wants %d arg(s), got %d", n.name, len(sig.Params), len(n.args))
		return TInvalid, cost
	}
	bad := false
	for i, at := range argTypes {
		pk := sig.Params[min(i, len(sig.Params)-1)]
		if at == TInvalid {
			bad = true
			continue
		}
		switch pk {
		case PNum:
			if at != TInt && at != TFloat {
				vf.report(PassTypecheck, n.line, "%s arg %d is %s, want int or float", n.name, i+1, at)
				bad = true
			}
		case PString:
			if at != TString {
				vf.report(PassTypecheck, n.line, "%s arg %d is %s, want string", n.name, i+1, at)
				bad = true
			}
		}
	}
	if bad {
		return TInvalid, cost
	}
	switch sig.Result {
	case RInt:
		return TInt, cost
	case RFloat:
		return TFloat, cost
	case RBool:
		return TBool, cost
	case RString:
		return TString, cost
	case RArg0:
		if len(argTypes) == 0 {
			return TInvalid, cost
		}
		if sig.Variadic {
			// The runtime returns whichever argument wins, so a mixed
			// int/float argument list has no single static type.
			for _, at := range argTypes[1:] {
				if at != argTypes[0] {
					vf.report(PassTypecheck, n.line, "%s arguments mix %s and %s; use one numeric type", n.name, argTypes[0], at)
					return TInvalid, cost
				}
			}
		}
		return argTypes[0], cost
	}
	return TInvalid, cost
}

// binaryResultType mirrors evalBinary's dynamic rules statically.
func (vf *verifier) binaryResultType(op string, l, r Type, line int) Type {
	switch op {
	case "&&", "||":
		if l == TBool && r == TBool {
			return TBool
		}
		vf.report(PassTypecheck, line, "%s on %s and %s", op, l, r)
		return TInvalid
	}
	if l == TString || r == TString {
		if l != r {
			vf.report(PassTypecheck, line, "mixed %s/%s operands", l, r)
			return TInvalid
		}
		switch op {
		case "+":
			return TString
		case "==", "!=", "<", "<=", ">", ">=":
			return TBool
		}
		vf.report(PassTypecheck, line, "op %q not defined on strings", op)
		return TInvalid
	}
	if l == TBool || r == TBool {
		if l != r {
			vf.report(PassTypecheck, line, "mixed %s/%s operands", l, r)
			return TInvalid
		}
		switch op {
		case "==", "!=":
			return TBool
		}
		vf.report(PassTypecheck, line, "op %q not defined on bools", op)
		return TInvalid
	}
	if l == TRecord || r == TRecord {
		vf.report(PassTypecheck, line, "op %q on a record", op)
		return TInvalid
	}
	// Numeric.
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return TBool
	case "%":
		if l == TInt && r == TInt {
			return TInt
		}
		vf.report(PassTypecheck, line, "op %% wants int operands, got %s and %s", l, r)
		return TInvalid
	case "+", "-", "*", "/":
		if l == TInt && r == TInt {
			return TInt
		}
		return TFloat
	}
	vf.report(PassTypecheck, line, "unknown op %q", op)
	return TInvalid
}
