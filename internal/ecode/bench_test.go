package ecode

import "testing"

// BenchmarkCPAPerEvent measures a realistic CPA program's per-event
// execution cost (it runs on the kernel fast path).
func BenchmarkCPAPerEvent(b *testing.B) {
	prog := MustCompile(`
		static int n = 0;
		static float sum = 0.0;
		if (ev.type == "net_rx" && ev.bytes > 512) {
			n++;
			sum += ev.bytes;
		}
		return n;
	`)
	inst := prog.NewInstance()
	bindings := map[string]Value{
		"ev": MapRecord{"type": "net_rx", "bytes": int64(1500)},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Run(bindings); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures runtime program installation cost.
func BenchmarkCompile(b *testing.B) {
	src := `static int n = 0; if (ev.bytes > 100) { n++; } return n;`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}
