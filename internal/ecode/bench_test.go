package ecode

import "testing"

// cpaBenchSource is a realistic CPA program for per-event cost
// measurement (it runs on the kernel fast path).
const cpaBenchSource = `
static int n = 0;
static float sum = 0.0;
if (ev.type == "net_rx" && ev.bytes > 512) {
	n++;
	sum += ev.bytes;
}
return n;
`

// BenchmarkCPAPerEvent compares the two CPA execution engines on the
// same program and event: the tree-walking interpreter (with its
// runtime step limit) versus the verified-and-compiled closures (no
// step counting — termination is proven at install time). cmd/benchhot
// guards that /compiled never regresses behind /interp.
func BenchmarkCPAPerEvent(b *testing.B) {
	bindings := map[string]Value{
		"ev": MapRecord{"type": "net_rx", "bytes": int64(1500)},
	}
	b.Run("interp", func(b *testing.B) {
		inst := MustCompile(cpaBenchSource).NewInstance()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := inst.Run(bindings); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		env := VerifyEnv{
			Name:    "bench",
			Records: map[string]RecordSchema{"ev": {"type": TString, "bytes": TInt}},
		}
		c, verdict, err := MustCompile(cpaBenchSource).CompileVerified(env)
		if err != nil {
			b.Fatalf("%v\n%s", err, verdict.Render())
		}
		ci, err := c.NewInstance(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ci.Run(bindings); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompile measures runtime program installation cost.
func BenchmarkCompile(b *testing.B) {
	src := `static int n = 0; if (ev.bytes > 100) { n++; } return n;`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerify measures install-time verification cost (paid once
// per install, never per event).
func BenchmarkVerify(b *testing.B) {
	prog := MustCompile(cpaBenchSource)
	env := VerifyEnv{
		Name:    "bench",
		Records: map[string]RecordSchema{"ev": {"type": TString, "bytes": TInt}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v := prog.Verify(env); !v.OK {
			b.Fatal(v.Render())
		}
	}
}
