package ecode

import (
	"errors"
	"strings"
	"testing"
)

func run(t *testing.T, src string, bindings map[string]Value) Value {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out, err := prog.NewInstance().Run(bindings)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		src  string
		want Value
	}{
		{"return 1 + 2 * 3;", int64(7)},
		{"return (1 + 2) * 3;", int64(9)},
		{"return 10 / 3;", int64(3)},
		{"return 10 % 3;", int64(1)},
		{"return 10.0 / 4;", 2.5},
		{"return -5 + 2;", int64(-3)},
		{"return 1 < 2;", true},
		{"return 2.5 >= 2.5;", true},
		{"return \"a\" + \"b\";", "ab"},
		{"return \"abc\" == \"abc\";", true},
		{"return true && false;", false},
		{"return true || false;", true},
		{"return !false;", true},
		{"return 1 == 1.0;", true},
	}
	for _, tt := range tests {
		if got := run(t, tt.src, nil); got != tt.want {
			t.Errorf("%s = %v (%T), want %v", tt.src, got, got, tt.want)
		}
	}
}

func TestVariablesAndAssignment(t *testing.T) {
	src := `
		int x = 3;
		x += 4;
		x *= 2;
		x++;
		return x;
	`
	if got := run(t, src, nil); got != int64(15) {
		t.Fatalf("got %v", got)
	}
}

func TestIfElseChain(t *testing.T) {
	src := `
		int x = 7;
		string label = "";
		if (x > 10) { label = "big"; }
		else if (x > 5) { label = "mid"; }
		else { label = "small"; }
		return label;
	`
	if got := run(t, src, nil); got != "mid" {
		t.Fatalf("got %v", got)
	}
}

func TestForLoop(t *testing.T) {
	src := `
		int sum = 0;
		for (int i = 1; i <= 10; i++) { sum += i; }
		return sum;
	`
	if got := run(t, src, nil); got != int64(55) {
		t.Fatalf("got %v", got)
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
		int sum = 0;
		for (int i = 0; i < 100; i++) {
			if (i % 2 == 0) { continue; }
			if (i > 8) { break; }
			sum += i;
		}
		return sum; // 1+3+5+7 = 16
	`
	if got := run(t, src, nil); got != int64(16) {
		t.Fatalf("got %v", got)
	}
}

func TestStaticPersistsAcrossRuns(t *testing.T) {
	prog := MustCompile(`
		static int count = 0;
		count++;
		return count;
	`)
	inst := prog.NewInstance()
	for want := int64(1); want <= 3; want++ {
		got, err := inst.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("run %d: got %v", want, got)
		}
	}
	if v, ok := inst.Static("count"); !ok || v != int64(3) {
		t.Fatalf("Static(count) = %v, %v", v, ok)
	}
	// A fresh instance starts over.
	if got, _ := prog.NewInstance().Run(nil); got != int64(1) {
		t.Fatalf("fresh instance got %v", got)
	}
}

func TestRecordFieldAccess(t *testing.T) {
	src := `
		if (ev.type == "net_rx" && ev.bytes > 1000) { return "big"; }
		return "small";
	`
	out := run(t, src, map[string]Value{
		"ev": MapRecord{"type": "net_rx", "bytes": int64(1500)},
	})
	if out != "big" {
		t.Fatalf("got %v", out)
	}
}

func TestBuiltins(t *testing.T) {
	tests := []struct {
		src  string
		want Value
	}{
		{`return len("hello");`, int64(5)},
		{`return abs(-4);`, int64(4)},
		{`return abs(-2.5);`, 2.5},
		{`return min(3, 1, 2);`, int64(1)},
		{`return max(3, 1, 2);`, int64(3)},
		{`return contains("hello world", "wor");`, true},
	}
	for _, tt := range tests {
		if got := run(t, tt.src, nil); got != tt.want {
			t.Errorf("%s = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestCustomBuiltin(t *testing.T) {
	prog := MustCompile(`emit("ch", 42); return 0;`)
	var gotChannel string
	var gotVal Value
	inst := prog.NewInstance(WithBuiltins(map[string]Builtin{
		"emit": func(args []Value) (Value, error) {
			gotChannel = args[0].(string)
			gotVal = args[1]
			return int64(0), nil
		},
	}))
	if _, err := inst.Run(nil); err != nil {
		t.Fatal(err)
	}
	if gotChannel != "ch" || gotVal != int64(42) {
		t.Fatalf("emit got %q %v", gotChannel, gotVal)
	}
}

func TestStepLimitStopsRunawayLoop(t *testing.T) {
	prog := MustCompile(`for (;;) { }`)
	inst := prog.NewInstance(WithStepLimit(1000))
	_, err := inst.Run(nil)
	var rte *RuntimeError
	if !errors.As(err, &rte) || !strings.Contains(rte.Msg, "step limit") {
		t.Fatalf("err = %v, want step-limit runtime error", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	tests := []struct {
		src, want string
	}{
		{"return 1 / 0;", "division by zero"},
		{"return 1 % 0;", "modulo by zero"},
		{"return x;", "undefined variable"},
		{"x = 3;", "undeclared variable"},
		{"return nosuchfn();", "unknown function"},
		{`return ev.bogus;`, "no field"},
		{"return 1 + \"a\";", "on int64 and string"},
		{"if (3) { }", "not bool"},
	}
	for _, tt := range tests {
		prog, err := Compile(tt.src)
		if err != nil {
			t.Fatalf("%s: compile: %v", tt.src, err)
		}
		_, err = prog.NewInstance().Run(map[string]Value{"ev": MapRecord{}})
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%s: err = %v, want containing %q", tt.src, err, tt.want)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	tests := []string{
		"return 1 +;",
		"if (true) return 1;", // block required
		"int = 3;",
		"for (;; { }",
		`return "unterminated;`,
		"return 1",
		"@",
		"/* unterminated",
	}
	for _, src := range tests {
		if _, err := Compile(src); err == nil {
			t.Errorf("%q compiled, want syntax error", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("%q: error %v is not *SyntaxError", src, err)
			}
		}
	}
}

func TestComments(t *testing.T) {
	src := `
		// line comment
		int x = 1; /* block
		comment */ x += 1;
		return x;
	`
	if got := run(t, src, nil); got != int64(2) {
		t.Fatalf("got %v", got)
	}
}

func TestScopingShadow(t *testing.T) {
	src := `
		int x = 1;
		if (true) {
			int x = 10;
			x += 5;
		}
		return x;
	`
	if got := run(t, src, nil); got != int64(1) {
		t.Fatalf("inner scope leaked: got %v", got)
	}
}

func TestDeclCoercion(t *testing.T) {
	if got := run(t, "float f = 3; return f * 2;", nil); got != 6.0 {
		t.Fatalf("got %v", got)
	}
	if got := run(t, "int i = 3.9; return i;", nil); got != int64(3) {
		t.Fatalf("got %v", got)
	}
}

// A realistic CPA: track per-run mean of a metric and flag outliers.
func TestRealisticCPA(t *testing.T) {
	prog := MustCompile(`
		static int n = 0;
		static float sum = 0.0;
		n++;
		sum += ev.latency;
		float mean = sum / n;
		if (ev.latency > mean * 2.0 && n > 3) { return true; }
		return false;
	`)
	inst := prog.NewInstance()
	latencies := []float64{10, 11, 9, 10, 50}
	var flagged int
	for _, l := range latencies {
		out, err := inst.Run(map[string]Value{"ev": MapRecord{"latency": l}})
		if err != nil {
			t.Fatal(err)
		}
		if out == true {
			flagged++
		}
	}
	if flagged != 1 {
		t.Fatalf("flagged %d outliers, want 1", flagged)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
		int n = 0;
		int sum = 0;
		while (n < 5) {
			sum += n;
			n++;
		}
		return sum;
	`
	if got := run(t, src, nil); got != int64(10) {
		t.Fatalf("got %v", got)
	}
	// while with break.
	src2 := `
		int n = 0;
		while (true) {
			n++;
			if (n >= 3) { break; }
		}
		return n;
	`
	if got := run(t, src2, nil); got != int64(3) {
		t.Fatalf("got %v", got)
	}
	if _, err := Compile("while true { }"); err == nil {
		t.Fatal("missing parens accepted")
	}
}
