package ecode

// compile.go lowers a verified E-Code program to specialized Go
// closures — the paper's "run-time code generation" step. Verification
// is what makes the lowering fast:
//
//   - Full static typing lets every variable live in a typed slot array
//     (int64/float64/bool/string/Record) indexed at compile time, so
//     the hot path never touches a map or boxes an intermediate value
//     the way the tree-walking interpreter does.
//   - The termination proof removes the interpreter's per-statement
//     step counter entirely: a verified loop needs no runtime guard.
//   - Builtins resolve to slot indices at compile time, and each call
//     site reuses a preallocated argument buffer.
//
// Only verified programs can be compiled (CompileVerified runs the
// verifier first); the interpreter remains the reference semantics and
// the fuzz harness cross-checks the two.

import (
	"fmt"
	"sort"
)

// Compiled is a verified E-Code program lowered to closures. It is
// immutable and shareable: each NewInstance gets private state.
type Compiled struct {
	name string
	cost int

	body []cstmt

	// Slot-space sizes per type (statics first, then locals).
	nInt, nFloat, nBool, nStr, nRec int
	nSInit                          int
	argBufSizes                     []int

	statics  map[string]slotRef
	bindings map[string]int // record binding name -> recs slot
	builtins []string       // builtin slot -> name
}

// Name returns the analyzer name the program was verified under.
func (c *Compiled) Name() string { return c.name }

// Cost returns the verifier's worst-case per-event step estimate.
func (c *Compiled) Cost() int { return c.cost }

// CompileVerified verifies p against env and, when it passes, lowers it
// to specialized closures. The verdict is always returned for
// inspection; on rejection the error carries the rendered evidence
// chains and the Compiled is nil.
func (p *Program) CompileVerified(env VerifyEnv) (*Compiled, *Verdict, error) {
	v := p.Verify(env)
	if !v.OK {
		return nil, v, fmt.Errorf("ecode: %s: %w", env.name(), v.Err())
	}
	c := &Compiled{
		name:     env.name(),
		cost:     v.Cost,
		statics:  map[string]slotRef{},
		bindings: map[string]int{},
	}
	cp := &compiler{
		c:       c,
		env:     env,
		sigs:    env.sigs(),
		statics: map[string]Type{},
		binfo:   map[string]int{},
	}
	// Record bindings occupy the first recs slots, in sorted order so
	// compilation is deterministic.
	names := make([]string, 0, len(env.Records))
	for n := range env.Records {
		names = append(names, n)
	}
	sort.Strings(names)
	root := &cscope{vars: map[string]slotRef{}}
	for _, n := range names {
		ref := slotRef{t: TRecord, idx: c.nRec}
		c.nRec++
		root.vars[n] = ref
		c.bindings[n] = ref.idx
	}
	cp.sc = &cscope{vars: map[string]slotRef{}, parent: root}
	body, err := cp.compileBlock(p.body)
	if err != nil {
		return nil, v, err
	}
	c.body = body
	return c, v, nil
}

// CompiledInstance is a compiled program plus its private persistent
// state. Like Instance, it is not safe for concurrent Run calls.
type CompiledInstance struct {
	c *Compiled
	m cmachine
}

// NewInstance binds the program to its builtins (defaults merged with
// extra) and allocates fresh static state. Every builtin the program
// calls must be present.
func (c *Compiled) NewInstance(extra map[string]Builtin) (*CompiledInstance, error) {
	impls := defaultBuiltins()
	for k, v := range extra {
		impls[k] = v
	}
	bound := make([]Builtin, len(c.builtins))
	for i, name := range c.builtins {
		fn, ok := impls[name]
		if !ok {
			return nil, fmt.Errorf("ecode: %s: no implementation for builtin %q", c.name, name)
		}
		bound[i] = fn
	}
	ci := &CompiledInstance{c: c}
	ci.m = cmachine{
		ints:     make([]int64, c.nInt),
		floats:   make([]float64, c.nFloat),
		bools:    make([]bool, c.nBool),
		strs:     make([]string, c.nStr),
		recs:     make([]Record, c.nRec),
		sinit:    make([]bool, c.nSInit),
		argbufs:  make([][]Value, len(c.argBufSizes)),
		builtins: bound,
	}
	for i, n := range c.argBufSizes {
		ci.m.argbufs[i] = make([]Value, n)
	}
	return ci, nil
}

// Run executes the program against the host bindings (every record
// named in the verify env must be present). Semantics match
// Instance.Run; there is no step limit because termination is proven.
func (ci *CompiledInstance) Run(bindings map[string]Value) (Value, error) {
	m := &ci.m
	m.ret = nil
	for name, idx := range ci.c.bindings {
		v, ok := bindings[name]
		if !ok {
			return nil, fmt.Errorf("ecode: %s: missing binding %q", ci.c.name, name)
		}
		rec, ok := v.(Record)
		if !ok {
			return nil, fmt.Errorf("ecode: %s: binding %q is %T, not a Record", ci.c.name, name, v)
		}
		m.recs[idx] = rec
	}
	if _, err := execSeq(m, ci.c.body); err != nil {
		return nil, err
	}
	return m.ret, nil
}

// Static returns a persistent variable's value, mirroring
// Instance.Static (absent until its declaration first executes).
func (ci *CompiledInstance) Static(name string) (Value, bool) {
	ref, ok := ci.c.statics[name]
	if !ok || !ci.m.sinit[ref.sinit] {
		return nil, false
	}
	switch ref.t {
	case TInt:
		return ci.m.ints[ref.idx], true
	case TFloat:
		return ci.m.floats[ref.idx], true
	case TBool:
		return ci.m.bools[ref.idx], true
	case TString:
		return ci.m.strs[ref.idx], true
	}
	return nil, false
}

// cmachine is one instance's mutable execution state: typed slot arrays
// (statics persist across runs; locals are always written before read,
// so they need no reset), the static init guards, per-call-site
// argument buffers, and the bound builtins.
type cmachine struct {
	ints     []int64
	floats   []float64
	bools    []bool
	strs     []string
	recs     []Record
	sinit    []bool
	argbufs  [][]Value
	builtins []Builtin
	ret      Value
}

// Closure kinds. Typed expression closures avoid interface boxing for
// every intermediate value on the hot path.
type (
	cstmt  func(*cmachine) (ctrl, error)
	cInt   func(*cmachine) (int64, error)
	cFloat func(*cmachine) (float64, error)
	cBool  func(*cmachine) (bool, error)
	cStr   func(*cmachine) (string, error)
	cVal   func(*cmachine) (Value, error)
)

func execSeq(m *cmachine, seq []cstmt) (ctrl, error) {
	for _, s := range seq {
		c, err := s(m)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

// slotRef locates a variable in the typed slot arrays.
type slotRef struct {
	t     Type
	idx   int
	sinit int // static init-guard index; -1 for locals
}

type cscope struct {
	vars   map[string]slotRef
	parent *cscope
}

func (s *cscope) lookup(name string) (slotRef, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if r, ok := cur.vars[name]; ok {
			return r, true
		}
	}
	return slotRef{}, false
}

type compiler struct {
	c       *Compiled
	env     VerifyEnv
	sigs    map[string]BuiltinSig
	sc      *cscope
	statics map[string]Type
	binfo   map[string]int
}

func (cp *compiler) alloc(t Type) int {
	switch t {
	case TInt:
		cp.c.nInt++
		return cp.c.nInt - 1
	case TFloat:
		cp.c.nFloat++
		return cp.c.nFloat - 1
	case TBool:
		cp.c.nBool++
		return cp.c.nBool - 1
	case TString:
		cp.c.nStr++
		return cp.c.nStr - 1
	case TRecord:
		cp.c.nRec++
		return cp.c.nRec - 1
	}
	return -1
}

func (cp *compiler) builtinSlot(name string) int {
	if i, ok := cp.binfo[name]; ok {
		return i
	}
	i := len(cp.c.builtins)
	cp.c.builtins = append(cp.c.builtins, name)
	cp.binfo[name] = i
	return i
}

func (cp *compiler) internal(line int, format string, args ...any) error {
	return fmt.Errorf("ecode: internal: line %d: "+format, append([]any{line}, args...)...)
}

// resolve finds a variable the way the interpreter does: scope chain
// (including bindings at the root), then statics.
func (cp *compiler) resolve(name string) (slotRef, bool) {
	if r, ok := cp.sc.lookup(name); ok {
		return r, true
	}
	r, ok := cp.c.statics[name]
	return r, ok
}

// typeOf re-derives an expression's static type from compiler scope;
// the program already verified, so this cannot fail in a way typecheck
// would have reported.
func (cp *compiler) typeOf(e expr) Type {
	switch n := e.(type) {
	case *intLit:
		return TInt
	case *floatLit:
		return TFloat
	case *boolLit:
		return TBool
	case *stringLit:
		return TString
	case *identExpr:
		if r, ok := cp.resolve(n.name); ok {
			return r.t
		}
	case *fieldExpr:
		if id, ok := n.recv.(*identExpr); ok {
			return cp.env.Records[id.name][n.field]
		}
	case *callExpr:
		sig, ok := cp.sigs[n.name]
		if !ok {
			return TInvalid
		}
		switch sig.Result {
		case RInt:
			return TInt
		case RFloat:
			return TFloat
		case RBool:
			return TBool
		case RString:
			return TString
		case RArg0:
			if len(n.args) > 0 {
				return cp.typeOf(n.args[0])
			}
		}
	case *unaryExpr:
		if n.op == "!" {
			return TBool
		}
		return cp.typeOf(n.x)
	case *binaryExpr:
		switch n.op {
		case "&&", "||", "==", "!=", "<", "<=", ">", ">=":
			return TBool
		}
		lt, rt := cp.typeOf(n.l), cp.typeOf(n.r)
		if lt == TString {
			return TString
		}
		if lt == TInt && rt == TInt {
			return TInt
		}
		return TFloat
	}
	return TInvalid
}

func (cp *compiler) compileBlock(stmts []stmt) ([]cstmt, error) {
	out := make([]cstmt, 0, len(stmts))
	for _, s := range stmts {
		cs, err := cp.compileStmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}

func (cp *compiler) compileStmt(s stmt) (cstmt, error) {
	switch n := s.(type) {
	case *declStmt:
		return cp.compileDecl(n)
	case *assignStmt:
		return cp.compileAssign(n)
	case *ifStmt:
		cond, err := cp.compileBool(n.cond)
		if err != nil {
			return nil, err
		}
		cp.sc = &cscope{vars: map[string]slotRef{}, parent: cp.sc}
		then, err := cp.compileBlock(n.then)
		if err != nil {
			return nil, err
		}
		cp.sc.vars = map[string]slotRef{}
		els, err := cp.compileBlock(n.els)
		cp.sc = cp.sc.parent
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (ctrl, error) {
			b, err := cond(m)
			if err != nil {
				return ctrlNone, err
			}
			if b {
				return execSeq(m, then)
			}
			return execSeq(m, els)
		}, nil

	case *forStmt:
		cp.sc = &cscope{vars: map[string]slotRef{}, parent: cp.sc}
		defer func() { cp.sc = cp.sc.parent }()
		var init, post cstmt
		var cond cBool
		var err error
		if n.init != nil {
			if init, err = cp.compileStmt(n.init); err != nil {
				return nil, err
			}
		}
		if n.cond != nil {
			if cond, err = cp.compileBool(n.cond); err != nil {
				return nil, err
			}
		}
		body, err := cp.compileBlock(n.body)
		if err != nil {
			return nil, err
		}
		if n.post != nil {
			if post, err = cp.compileStmt(n.post); err != nil {
				return nil, err
			}
		}
		return func(m *cmachine) (ctrl, error) {
			if init != nil {
				if _, err := init(m); err != nil {
					return ctrlNone, err
				}
			}
			for {
				if cond != nil {
					ok, err := cond(m)
					if err != nil {
						return ctrlNone, err
					}
					if !ok {
						break
					}
				}
				c, err := execSeq(m, body)
				if err != nil {
					return ctrlNone, err
				}
				if c == ctrlReturn {
					return c, nil
				}
				if c == ctrlBreak {
					break
				}
				if post != nil {
					if _, err := post(m); err != nil {
						return ctrlNone, err
					}
				}
			}
			return ctrlNone, nil
		}, nil

	case *returnStmt:
		if n.val == nil {
			return func(m *cmachine) (ctrl, error) { return ctrlReturn, nil }, nil
		}
		v, err := cp.compileVal(n.val)
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (ctrl, error) {
			rv, err := v(m)
			if err != nil {
				return ctrlNone, err
			}
			m.ret = rv
			return ctrlReturn, nil
		}, nil

	case *exprStmt:
		// A discarded call result is not type-asserted (the interpreter
		// never looks at it either), so compile calls directly instead
		// of through a typed path.
		var f cVal
		var err error
		if call, ok := n.e.(*callExpr); ok {
			f, err = cp.compileCall(call)
		} else {
			f, err = cp.compileVal(n.e)
		}
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (ctrl, error) { _, err := f(m); return ctrlNone, err }, nil

	case *breakStmt:
		return func(m *cmachine) (ctrl, error) { return ctrlBreak, nil }, nil
	case *continueStmt:
		return func(m *cmachine) (ctrl, error) { return ctrlContinue, nil }, nil
	}
	return nil, fmt.Errorf("ecode: internal: unknown statement %T", s)
}

func (cp *compiler) compileDecl(n *declStmt) (cstmt, error) {
	t := typeFromName(n.typ)
	var ref slotRef
	if n.static {
		var ok bool
		if ref, ok = cp.c.statics[n.name]; !ok {
			ref = slotRef{t: t, idx: cp.alloc(t), sinit: cp.c.nSInit}
			cp.c.nSInit++
			cp.c.statics[n.name] = ref
		}
	} else {
		ref = slotRef{t: t, idx: cp.alloc(t), sinit: -1}
		cp.sc.vars[n.name] = ref
	}
	store, err := cp.compileStore(ref, n.init, n.line)
	if err != nil {
		return nil, err
	}
	if !n.static {
		return store, nil
	}
	guard := ref.sinit
	return func(m *cmachine) (ctrl, error) {
		if m.sinit[guard] {
			return ctrlNone, nil
		}
		m.sinit[guard] = true
		return store(m)
	}, nil
}

// compileStore builds the "evaluate init (or zero) and write the slot"
// statement for a declaration, applying the interpreter's int<->float
// init coercion.
func (cp *compiler) compileStore(ref slotRef, init expr, line int) (cstmt, error) {
	idx := ref.idx
	switch ref.t {
	case TInt:
		if init == nil {
			return func(m *cmachine) (ctrl, error) { m.ints[idx] = 0; return ctrlNone, nil }, nil
		}
		if cp.typeOf(init) == TFloat {
			f, err := cp.compileFloat(init)
			if err != nil {
				return nil, err
			}
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				m.ints[idx] = int64(v)
				return ctrlNone, err
			}, nil
		}
		f, err := cp.compileInt(init)
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (ctrl, error) {
			v, err := f(m)
			m.ints[idx] = v
			return ctrlNone, err
		}, nil
	case TFloat:
		if init == nil {
			return func(m *cmachine) (ctrl, error) { m.floats[idx] = 0; return ctrlNone, nil }, nil
		}
		f, err := cp.compileFloat(init) // promotes int inits
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (ctrl, error) {
			v, err := f(m)
			m.floats[idx] = v
			return ctrlNone, err
		}, nil
	case TBool:
		if init == nil {
			return func(m *cmachine) (ctrl, error) { m.bools[idx] = false; return ctrlNone, nil }, nil
		}
		f, err := cp.compileBool(init)
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (ctrl, error) {
			v, err := f(m)
			m.bools[idx] = v
			return ctrlNone, err
		}, nil
	case TString:
		if init == nil {
			return func(m *cmachine) (ctrl, error) { m.strs[idx] = ""; return ctrlNone, nil }, nil
		}
		f, err := cp.compileStr(init)
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (ctrl, error) {
			v, err := f(m)
			m.strs[idx] = v
			return ctrlNone, err
		}, nil
	}
	return nil, cp.internal(line, "declaration of %s", ref.t)
}

func (cp *compiler) compileAssign(n *assignStmt) (cstmt, error) {
	ref, ok := cp.resolve(n.name)
	if !ok {
		return nil, cp.internal(n.line, "assignment to unresolved %q", n.name)
	}
	idx := ref.idx
	line := n.line
	switch ref.t {
	case TInt:
		f, err := cp.compileInt(n.val)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case "=":
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				m.ints[idx] = v
				return ctrlNone, err
			}, nil
		case "+=":
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				m.ints[idx] += v
				return ctrlNone, err
			}, nil
		case "-=":
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				m.ints[idx] -= v
				return ctrlNone, err
			}, nil
		case "*=":
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				m.ints[idx] *= v
				return ctrlNone, err
			}, nil
		case "/=":
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				if err != nil {
					return ctrlNone, err
				}
				if v == 0 {
					return ctrlNone, rtErr(line, "integer division by zero")
				}
				m.ints[idx] /= v
				return ctrlNone, nil
			}, nil
		}
	case TFloat:
		f, err := cp.compileFloat(n.val)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case "=":
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				m.floats[idx] = v
				return ctrlNone, err
			}, nil
		case "+=":
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				m.floats[idx] += v
				return ctrlNone, err
			}, nil
		case "-=":
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				m.floats[idx] -= v
				return ctrlNone, err
			}, nil
		case "*=":
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				m.floats[idx] *= v
				return ctrlNone, err
			}, nil
		case "/=":
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				if err != nil {
					return ctrlNone, err
				}
				if v == 0 {
					return ctrlNone, rtErr(line, "division by zero")
				}
				m.floats[idx] /= v
				return ctrlNone, nil
			}, nil
		}
	case TBool:
		if n.op == "=" {
			f, err := cp.compileBool(n.val)
			if err != nil {
				return nil, err
			}
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				m.bools[idx] = v
				return ctrlNone, err
			}, nil
		}
	case TString:
		f, err := cp.compileStr(n.val)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case "=":
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				m.strs[idx] = v
				return ctrlNone, err
			}, nil
		case "+=":
			return func(m *cmachine) (ctrl, error) {
				v, err := f(m)
				m.strs[idx] += v
				return ctrlNone, err
			}, nil
		}
	}
	return nil, cp.internal(n.line, "assignment %s %s", ref.t, n.op)
}

// compileField builds the generic record-field load.
func (cp *compiler) compileField(n *fieldExpr) (cVal, error) {
	id, ok := n.recv.(*identExpr)
	if !ok {
		return nil, cp.internal(n.line, "field access on non-identifier")
	}
	ref, ok := cp.resolve(id.name)
	if !ok || ref.t != TRecord {
		return nil, cp.internal(n.line, "field access on %q", id.name)
	}
	idx, field, line := ref.idx, n.field, n.line
	return func(m *cmachine) (Value, error) {
		v, ok := m.recs[idx].Field(field)
		if !ok {
			return nil, rtErr(line, "record has no field %q", field)
		}
		return v, nil
	}, nil
}

func (cp *compiler) compileCall(n *callExpr) (cVal, error) {
	slot := cp.builtinSlot(n.name)
	argFns := make([]cVal, len(n.args))
	for i, a := range n.args {
		f, err := cp.compileVal(a)
		if err != nil {
			return nil, err
		}
		argFns[i] = f
	}
	bufIdx := len(cp.c.argBufSizes)
	cp.c.argBufSizes = append(cp.c.argBufSizes, len(n.args))
	name, line := n.name, n.line
	return func(m *cmachine) (Value, error) {
		buf := m.argbufs[bufIdx]
		for i, f := range argFns {
			v, err := f(m)
			if err != nil {
				return nil, err
			}
			buf[i] = v
		}
		v, err := m.builtins[slot](buf)
		if err != nil {
			return nil, rtErr(line, "%s: %v", name, err)
		}
		return v, nil
	}, nil
}

func (cp *compiler) compileInt(e expr) (cInt, error) {
	switch n := e.(type) {
	case *intLit:
		v := n.v
		return func(*cmachine) (int64, error) { return v, nil }, nil
	case *identExpr:
		ref, ok := cp.resolve(n.name)
		if !ok || ref.t != TInt {
			return nil, cp.internal(n.line, "int read of %q", n.name)
		}
		idx := ref.idx
		return func(m *cmachine) (int64, error) { return m.ints[idx], nil }, nil
	case *fieldExpr:
		f, err := cp.compileField(n)
		if err != nil {
			return nil, err
		}
		line, field := n.line, n.field
		return func(m *cmachine) (int64, error) {
			v, err := f(m)
			if err != nil {
				return 0, err
			}
			i, ok := v.(int64)
			if !ok {
				return 0, rtErr(line, "field %q is %T, schema says int", field, v)
			}
			return i, nil
		}, nil
	case *callExpr:
		f, err := cp.compileCall(n)
		if err != nil {
			return nil, err
		}
		line, name := n.line, n.name
		return func(m *cmachine) (int64, error) {
			v, err := f(m)
			if err != nil {
				return 0, err
			}
			i, ok := v.(int64)
			if !ok {
				return 0, rtErr(line, "%s returned %T, want int", name, v)
			}
			return i, nil
		}, nil
	case *unaryExpr:
		if n.op != "-" {
			return nil, cp.internal(n.line, "int unary %q", n.op)
		}
		f, err := cp.compileInt(n.x)
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (int64, error) {
			v, err := f(m)
			return -v, err
		}, nil
	case *binaryExpr:
		l, err := cp.compileInt(n.l)
		if err != nil {
			return nil, err
		}
		r, err := cp.compileInt(n.r)
		if err != nil {
			return nil, err
		}
		line := n.line
		switch n.op {
		case "+":
			return func(m *cmachine) (int64, error) {
				lv, err := l(m)
				if err != nil {
					return 0, err
				}
				rv, err := r(m)
				return lv + rv, err
			}, nil
		case "-":
			return func(m *cmachine) (int64, error) {
				lv, err := l(m)
				if err != nil {
					return 0, err
				}
				rv, err := r(m)
				return lv - rv, err
			}, nil
		case "*":
			return func(m *cmachine) (int64, error) {
				lv, err := l(m)
				if err != nil {
					return 0, err
				}
				rv, err := r(m)
				return lv * rv, err
			}, nil
		case "/":
			return func(m *cmachine) (int64, error) {
				lv, err := l(m)
				if err != nil {
					return 0, err
				}
				rv, err := r(m)
				if err != nil {
					return 0, err
				}
				if rv == 0 {
					return 0, rtErr(line, "integer division by zero")
				}
				return lv / rv, nil
			}, nil
		case "%":
			return func(m *cmachine) (int64, error) {
				lv, err := l(m)
				if err != nil {
					return 0, err
				}
				rv, err := r(m)
				if err != nil {
					return 0, err
				}
				if rv == 0 {
					return 0, rtErr(line, "integer modulo by zero")
				}
				return lv % rv, nil
			}, nil
		}
		return nil, cp.internal(n.line, "int binary %q", n.op)
	}
	return nil, fmt.Errorf("ecode: internal: int expression %T", e)
}

func (cp *compiler) compileFloat(e expr) (cFloat, error) {
	// Ints promote to float wherever a float is expected, exactly like
	// evalBinary's mixed-operand rule.
	if cp.typeOf(e) == TInt {
		f, err := cp.compileInt(e)
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (float64, error) {
			v, err := f(m)
			return float64(v), err
		}, nil
	}
	switch n := e.(type) {
	case *floatLit:
		v := n.v
		return func(*cmachine) (float64, error) { return v, nil }, nil
	case *identExpr:
		ref, ok := cp.resolve(n.name)
		if !ok || ref.t != TFloat {
			return nil, cp.internal(n.line, "float read of %q", n.name)
		}
		idx := ref.idx
		return func(m *cmachine) (float64, error) { return m.floats[idx], nil }, nil
	case *fieldExpr:
		f, err := cp.compileField(n)
		if err != nil {
			return nil, err
		}
		line, field := n.line, n.field
		return func(m *cmachine) (float64, error) {
			v, err := f(m)
			if err != nil {
				return 0, err
			}
			x, ok := v.(float64)
			if !ok {
				return 0, rtErr(line, "field %q is %T, schema says float", field, v)
			}
			return x, nil
		}, nil
	case *callExpr:
		f, err := cp.compileCall(n)
		if err != nil {
			return nil, err
		}
		line, name := n.line, n.name
		return func(m *cmachine) (float64, error) {
			v, err := f(m)
			if err != nil {
				return 0, err
			}
			x, ok := v.(float64)
			if !ok {
				return 0, rtErr(line, "%s returned %T, want float", name, v)
			}
			return x, nil
		}, nil
	case *unaryExpr:
		if n.op != "-" {
			return nil, cp.internal(n.line, "float unary %q", n.op)
		}
		f, err := cp.compileFloat(n.x)
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (float64, error) {
			v, err := f(m)
			return -v, err
		}, nil
	case *binaryExpr:
		l, err := cp.compileFloat(n.l)
		if err != nil {
			return nil, err
		}
		r, err := cp.compileFloat(n.r)
		if err != nil {
			return nil, err
		}
		line := n.line
		switch n.op {
		case "+":
			return func(m *cmachine) (float64, error) {
				lv, err := l(m)
				if err != nil {
					return 0, err
				}
				rv, err := r(m)
				return lv + rv, err
			}, nil
		case "-":
			return func(m *cmachine) (float64, error) {
				lv, err := l(m)
				if err != nil {
					return 0, err
				}
				rv, err := r(m)
				return lv - rv, err
			}, nil
		case "*":
			return func(m *cmachine) (float64, error) {
				lv, err := l(m)
				if err != nil {
					return 0, err
				}
				rv, err := r(m)
				return lv * rv, err
			}, nil
		case "/":
			return func(m *cmachine) (float64, error) {
				lv, err := l(m)
				if err != nil {
					return 0, err
				}
				rv, err := r(m)
				if err != nil {
					return 0, err
				}
				if rv == 0 {
					return 0, rtErr(line, "division by zero")
				}
				return lv / rv, nil
			}, nil
		}
		return nil, cp.internal(n.line, "float binary %q", n.op)
	}
	return nil, fmt.Errorf("ecode: internal: float expression %T", e)
}

func (cp *compiler) compileStr(e expr) (cStr, error) {
	switch n := e.(type) {
	case *stringLit:
		v := n.v
		return func(*cmachine) (string, error) { return v, nil }, nil
	case *identExpr:
		ref, ok := cp.resolve(n.name)
		if !ok || ref.t != TString {
			return nil, cp.internal(n.line, "string read of %q", n.name)
		}
		idx := ref.idx
		return func(m *cmachine) (string, error) { return m.strs[idx], nil }, nil
	case *fieldExpr:
		f, err := cp.compileField(n)
		if err != nil {
			return nil, err
		}
		line, field := n.line, n.field
		return func(m *cmachine) (string, error) {
			v, err := f(m)
			if err != nil {
				return "", err
			}
			s, ok := v.(string)
			if !ok {
				return "", rtErr(line, "field %q is %T, schema says string", field, v)
			}
			return s, nil
		}, nil
	case *callExpr:
		f, err := cp.compileCall(n)
		if err != nil {
			return nil, err
		}
		line, name := n.line, n.name
		return func(m *cmachine) (string, error) {
			v, err := f(m)
			if err != nil {
				return "", err
			}
			s, ok := v.(string)
			if !ok {
				return "", rtErr(line, "%s returned %T, want string", name, v)
			}
			return s, nil
		}, nil
	case *binaryExpr:
		if n.op != "+" {
			return nil, cp.internal(n.line, "string binary %q", n.op)
		}
		l, err := cp.compileStr(n.l)
		if err != nil {
			return nil, err
		}
		r, err := cp.compileStr(n.r)
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (string, error) {
			lv, err := l(m)
			if err != nil {
				return "", err
			}
			rv, err := r(m)
			return lv + rv, err
		}, nil
	}
	return nil, fmt.Errorf("ecode: internal: string expression %T", e)
}

func (cp *compiler) compileBool(e expr) (cBool, error) {
	switch n := e.(type) {
	case *boolLit:
		v := n.v
		return func(*cmachine) (bool, error) { return v, nil }, nil
	case *identExpr:
		ref, ok := cp.resolve(n.name)
		if !ok || ref.t != TBool {
			return nil, cp.internal(n.line, "bool read of %q", n.name)
		}
		idx := ref.idx
		return func(m *cmachine) (bool, error) { return m.bools[idx], nil }, nil
	case *fieldExpr:
		f, err := cp.compileField(n)
		if err != nil {
			return nil, err
		}
		line, field := n.line, n.field
		return func(m *cmachine) (bool, error) {
			v, err := f(m)
			if err != nil {
				return false, err
			}
			b, ok := v.(bool)
			if !ok {
				return false, rtErr(line, "field %q is %T, schema says bool", field, v)
			}
			return b, nil
		}, nil
	case *callExpr:
		f, err := cp.compileCall(n)
		if err != nil {
			return nil, err
		}
		line, name := n.line, n.name
		return func(m *cmachine) (bool, error) {
			v, err := f(m)
			if err != nil {
				return false, err
			}
			b, ok := v.(bool)
			if !ok {
				return false, rtErr(line, "%s returned %T, want bool", name, v)
			}
			return b, nil
		}, nil
	case *unaryExpr:
		if n.op != "!" {
			return nil, cp.internal(n.line, "bool unary %q", n.op)
		}
		f, err := cp.compileBool(n.x)
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (bool, error) {
			v, err := f(m)
			return !v, err
		}, nil
	case *binaryExpr:
		return cp.compileBoolBinary(n)
	}
	return nil, fmt.Errorf("ecode: internal: bool expression %T", e)
}

func (cp *compiler) compileBoolBinary(n *binaryExpr) (cBool, error) {
	switch n.op {
	case "&&", "||":
		l, err := cp.compileBool(n.l)
		if err != nil {
			return nil, err
		}
		r, err := cp.compileBool(n.r)
		if err != nil {
			return nil, err
		}
		if n.op == "&&" {
			return func(m *cmachine) (bool, error) {
				lv, err := l(m)
				if err != nil || !lv {
					return false, err
				}
				return r(m)
			}, nil
		}
		return func(m *cmachine) (bool, error) {
			lv, err := l(m)
			if err != nil || lv {
				return lv, err
			}
			return r(m)
		}, nil
	}

	lt, rt := cp.typeOf(n.l), cp.typeOf(n.r)
	op := n.op
	switch {
	case lt == TString && rt == TString:
		l, err := cp.compileStr(n.l)
		if err != nil {
			return nil, err
		}
		r, err := cp.compileStr(n.r)
		if err != nil {
			return nil, err
		}
		cmp, err := strCmp(op)
		if err != nil {
			return nil, cp.internal(n.line, "%v", err)
		}
		return func(m *cmachine) (bool, error) {
			lv, err := l(m)
			if err != nil {
				return false, err
			}
			rv, err := r(m)
			return cmp(lv, rv), err
		}, nil
	case lt == TBool && rt == TBool:
		l, err := cp.compileBool(n.l)
		if err != nil {
			return nil, err
		}
		r, err := cp.compileBool(n.r)
		if err != nil {
			return nil, err
		}
		eq := op == "=="
		if !eq && op != "!=" {
			return nil, cp.internal(n.line, "bool comparison %q", op)
		}
		return func(m *cmachine) (bool, error) {
			lv, err := l(m)
			if err != nil {
				return false, err
			}
			rv, err := r(m)
			return (lv == rv) == eq, err
		}, nil
	case lt == TInt && rt == TInt:
		l, err := cp.compileInt(n.l)
		if err != nil {
			return nil, err
		}
		r, err := cp.compileInt(n.r)
		if err != nil {
			return nil, err
		}
		cmp, err := intCmp(op)
		if err != nil {
			return nil, cp.internal(n.line, "%v", err)
		}
		return func(m *cmachine) (bool, error) {
			lv, err := l(m)
			if err != nil {
				return false, err
			}
			rv, err := r(m)
			return cmp(lv, rv), err
		}, nil
	default: // mixed numeric: promote both to float, like evalBinary
		l, err := cp.compileFloat(n.l)
		if err != nil {
			return nil, err
		}
		r, err := cp.compileFloat(n.r)
		if err != nil {
			return nil, err
		}
		cmp, err := floatCmp(op)
		if err != nil {
			return nil, cp.internal(n.line, "%v", err)
		}
		return func(m *cmachine) (bool, error) {
			lv, err := l(m)
			if err != nil {
				return false, err
			}
			rv, err := r(m)
			return cmp(lv, rv), err
		}, nil
	}
}

func intCmp(op string) (func(a, b int64) bool, error) {
	switch op {
	case "==":
		return func(a, b int64) bool { return a == b }, nil
	case "!=":
		return func(a, b int64) bool { return a != b }, nil
	case "<":
		return func(a, b int64) bool { return a < b }, nil
	case "<=":
		return func(a, b int64) bool { return a <= b }, nil
	case ">":
		return func(a, b int64) bool { return a > b }, nil
	case ">=":
		return func(a, b int64) bool { return a >= b }, nil
	}
	return nil, fmt.Errorf("int comparison %q", op)
}

func floatCmp(op string) (func(a, b float64) bool, error) {
	switch op {
	case "==":
		return func(a, b float64) bool { return a == b }, nil
	case "!=":
		return func(a, b float64) bool { return a != b }, nil
	case "<":
		return func(a, b float64) bool { return a < b }, nil
	case "<=":
		return func(a, b float64) bool { return a <= b }, nil
	case ">":
		return func(a, b float64) bool { return a > b }, nil
	case ">=":
		return func(a, b float64) bool { return a >= b }, nil
	}
	return nil, fmt.Errorf("float comparison %q", op)
}

func strCmp(op string) (func(a, b string) bool, error) {
	switch op {
	case "==":
		return func(a, b string) bool { return a == b }, nil
	case "!=":
		return func(a, b string) bool { return a != b }, nil
	case "<":
		return func(a, b string) bool { return a < b }, nil
	case "<=":
		return func(a, b string) bool { return a <= b }, nil
	case ">":
		return func(a, b string) bool { return a > b }, nil
	case ">=":
		return func(a, b string) bool { return a >= b }, nil
	}
	return nil, fmt.Errorf("string comparison %q", op)
}

// compileVal compiles any expression to a generic (boxing) closure —
// used only where a Value is genuinely needed: return statements and
// builtin arguments.
func (cp *compiler) compileVal(e expr) (cVal, error) {
	switch cp.typeOf(e) {
	case TInt:
		f, err := cp.compileInt(e)
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (Value, error) {
			v, err := f(m)
			if err != nil {
				return nil, err
			}
			return v, nil
		}, nil
	case TFloat:
		f, err := cp.compileFloat(e)
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (Value, error) {
			v, err := f(m)
			if err != nil {
				return nil, err
			}
			return v, nil
		}, nil
	case TBool:
		f, err := cp.compileBool(e)
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (Value, error) {
			v, err := f(m)
			if err != nil {
				return nil, err
			}
			return v, nil
		}, nil
	case TString:
		f, err := cp.compileStr(e)
		if err != nil {
			return nil, err
		}
		return func(m *cmachine) (Value, error) {
			v, err := f(m)
			if err != nil {
				return nil, err
			}
			return v, nil
		}, nil
	case TRecord:
		id, ok := e.(*identExpr)
		if !ok {
			return nil, fmt.Errorf("ecode: internal: record expression %T", e)
		}
		ref, ok := cp.resolve(id.name)
		if !ok {
			return nil, cp.internal(id.line, "record read of %q", id.name)
		}
		idx := ref.idx
		return func(m *cmachine) (Value, error) { return m.recs[idx], nil }, nil
	}
	return nil, fmt.Errorf("ecode: internal: untyped expression %T", e)
}
