package ecode_test

import (
	"fmt"

	"sysprof/internal/ecode"
)

// Compile and run a small analyzer with persistent state.
func ExampleCompile() {
	prog, err := ecode.Compile(`
		static int big = 0;
		if (ev.bytes > 1000) { big++; }
		return big;
	`)
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	inst := prog.NewInstance()
	for _, bytes := range []int64{500, 1500, 2000, 100} {
		out, err := inst.Run(map[string]ecode.Value{
			"ev": ecode.MapRecord{"bytes": bytes},
		})
		if err != nil {
			fmt.Println("run:", err)
			return
		}
		fmt.Println(out)
	}
	// Output:
	// 0
	// 1
	// 2
	// 2
}

// Host programs can expose custom builtins, like SysProf's emit().
func ExampleWithBuiltins() {
	prog := ecode.MustCompile(`emit("alerts", 42); return 0;`)
	inst := prog.NewInstance(ecode.WithBuiltins(map[string]ecode.Builtin{
		"emit": func(args []ecode.Value) (ecode.Value, error) {
			fmt.Printf("emit(%v, %v)\n", args[0], args[1])
			return int64(0), nil
		},
	}))
	_, _ = inst.Run(nil)
	// Output:
	// emit(alerts, 42)
}
