package ecode

import (
	"fmt"
	"strings"
)

// Value is an E-Code runtime value: int64, float64, bool, string, or a
// Record (for host-bound structured data like kernel events).
type Value = any

// Record exposes named fields to E-Code programs (e.g. the kernel event
// bound as "ev").
type Record interface {
	Field(name string) (Value, bool)
}

// MapRecord adapts a map to the Record interface.
type MapRecord map[string]Value

// Field implements Record.
func (m MapRecord) Field(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}

// Builtin is a host-provided function callable from programs.
type Builtin func(args []Value) (Value, error)

// RuntimeError reports an execution problem with source position.
type RuntimeError struct {
	Line int
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("ecode: line %d: %s", e.Line, e.Msg)
}

func rtErr(line int, format string, args ...any) error {
	return &RuntimeError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Program is a compiled E-Code unit.
type Program struct {
	body []stmt
}

// Instance is a program plus its persistent state: static variables
// survive across Run calls, which is how CPAs accumulate statistics over
// event streams.
type Instance struct {
	prog     *Program
	statics  map[string]Value
	builtins map[string]Builtin
	// stepLimit bounds loop iterations per Run so a buggy analyzer
	// cannot wedge the kernel fast path.
	stepLimit int
	steps     int
}

// InstanceOption configures an Instance.
type InstanceOption func(*Instance)

// WithBuiltins adds host functions.
func WithBuiltins(b map[string]Builtin) InstanceOption {
	return func(i *Instance) {
		for k, v := range b {
			i.builtins[k] = v
		}
	}
}

// WithStepLimit overrides the per-run execution step budget (default 1e6).
func WithStepLimit(n int) InstanceOption {
	return func(i *Instance) {
		if n > 0 {
			i.stepLimit = n
		}
	}
}

// NewInstance creates an executable instance with fresh static state.
func (p *Program) NewInstance(opts ...InstanceOption) *Instance {
	inst := &Instance{
		prog:      p,
		statics:   make(map[string]Value),
		builtins:  defaultBuiltins(),
		stepLimit: 1_000_000,
	}
	for _, opt := range opts {
		opt(inst)
	}
	return inst
}

func defaultBuiltins() map[string]Builtin {
	return map[string]Builtin{
		"len": func(args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("len wants 1 arg")
			}
			s, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("len wants a string")
			}
			return int64(len(s)), nil
		},
		"abs": func(args []Value) (Value, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("abs wants 1 arg")
			}
			switch v := args[0].(type) {
			case int64:
				if v < 0 {
					return -v, nil
				}
				return v, nil
			case float64:
				if v < 0 {
					return -v, nil
				}
				return v, nil
			}
			return nil, fmt.Errorf("abs wants a number")
		},
		"min": minMax(true),
		"max": minMax(false),
		"contains": func(args []Value) (Value, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("contains wants 2 args")
			}
			s, ok1 := args[0].(string)
			sub, ok2 := args[1].(string)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("contains wants strings")
			}
			return strings.Contains(s, sub), nil
		},
	}
}

func minMax(isMin bool) Builtin {
	return func(args []Value) (Value, error) {
		if len(args) < 1 {
			return nil, fmt.Errorf("min/max want at least 1 arg")
		}
		best := args[0]
		for _, a := range args[1:] {
			less, err := lessThan(a, best)
			if err != nil {
				return nil, err
			}
			if less == isMin {
				best = a
			}
		}
		return best, nil
	}
}

func lessThan(a, b Value) (bool, error) {
	af, aIsF := toFloat(a)
	bf, bIsF := toFloat(b)
	if aIsF && bIsF {
		return af < bf, nil
	}
	return false, fmt.Errorf("cannot compare %T and %T", a, b)
}

func toFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

// control-flow signals inside the interpreter.
type ctrl uint8

const (
	ctrlNone ctrl = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

type scope struct {
	vars   map[string]Value
	parent *scope
}

func (s *scope) lookup(name string) (Value, *scope, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, cur, true
		}
	}
	return nil, nil, false
}

type execState struct {
	inst   *Instance
	locals *scope
	ret    Value
}

// Run executes the program with the given host bindings (e.g. "ev" bound
// to a Record). It returns the value of the first executed return
// statement, or nil if execution falls off the end.
func (i *Instance) Run(bindings map[string]Value) (Value, error) {
	i.steps = 0
	root := &scope{vars: make(map[string]Value, len(bindings))}
	for k, v := range bindings {
		root.vars[k] = v
	}
	st := &execState{inst: i, locals: &scope{vars: make(map[string]Value), parent: root}}
	_, err := st.execBlock(i.prog.body)
	if err != nil {
		return nil, err
	}
	return st.ret, nil
}

// Static returns a persistent variable's current value (observability for
// hosts and tests).
func (i *Instance) Static(name string) (Value, bool) {
	v, ok := i.statics[name]
	return v, ok
}

func (st *execState) step(line int) error {
	st.inst.steps++
	if st.inst.steps > st.inst.stepLimit {
		return rtErr(line, "step limit exceeded (%d)", st.inst.stepLimit)
	}
	return nil
}

func (st *execState) execBlock(stmts []stmt) (ctrl, error) {
	for _, s := range stmts {
		c, err := st.exec(s)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (st *execState) exec(s stmt) (ctrl, error) {
	switch n := s.(type) {
	case *declStmt:
		if err := st.step(n.line); err != nil {
			return ctrlNone, err
		}
		var v Value
		if n.init != nil {
			var err error
			v, err = st.eval(n.init)
			if err != nil {
				return ctrlNone, err
			}
			v, err = coerce(v, n.typ, n.line)
			if err != nil {
				return ctrlNone, err
			}
		} else {
			v = zeroOf(n.typ)
		}
		if n.static {
			if _, ok := st.inst.statics[n.name]; !ok {
				st.inst.statics[n.name] = v
			}
			return ctrlNone, nil
		}
		st.locals.vars[n.name] = v
		return ctrlNone, nil

	case *assignStmt:
		if err := st.step(n.line); err != nil {
			return ctrlNone, err
		}
		v, err := st.eval(n.val)
		if err != nil {
			return ctrlNone, err
		}
		return ctrlNone, st.assign(n, v)

	case *ifStmt:
		if err := st.step(n.line); err != nil {
			return ctrlNone, err
		}
		cond, err := st.evalBool(n.cond, n.line)
		if err != nil {
			return ctrlNone, err
		}
		st.locals = &scope{vars: make(map[string]Value), parent: st.locals}
		defer func() { st.locals = st.locals.parent }()
		if cond {
			return st.execBlock(n.then)
		}
		return st.execBlock(n.els)

	case *forStmt:
		st.locals = &scope{vars: make(map[string]Value), parent: st.locals}
		defer func() { st.locals = st.locals.parent }()
		if n.init != nil {
			if _, err := st.exec(n.init); err != nil {
				return ctrlNone, err
			}
		}
		for {
			if err := st.step(n.line); err != nil {
				return ctrlNone, err
			}
			if n.cond != nil {
				ok, err := st.evalBool(n.cond, n.line)
				if err != nil {
					return ctrlNone, err
				}
				if !ok {
					break
				}
			}
			c, err := st.execBlock(n.body)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlReturn {
				return c, nil
			}
			if c == ctrlBreak {
				break
			}
			if n.post != nil {
				if _, err := st.exec(n.post); err != nil {
					return ctrlNone, err
				}
			}
		}
		return ctrlNone, nil

	case *returnStmt:
		if err := st.step(n.line); err != nil {
			return ctrlNone, err
		}
		if n.val != nil {
			v, err := st.eval(n.val)
			if err != nil {
				return ctrlNone, err
			}
			st.ret = v
		}
		return ctrlReturn, nil

	case *exprStmt:
		if err := st.step(n.line); err != nil {
			return ctrlNone, err
		}
		_, err := st.eval(n.e)
		return ctrlNone, err

	case *breakStmt:
		return ctrlBreak, nil
	case *continueStmt:
		return ctrlContinue, nil
	}
	return ctrlNone, fmt.Errorf("ecode: unknown statement %T", s)
}

func (st *execState) assign(n *assignStmt, v Value) error {
	// Resolve target: local scope chain first, then statics.
	if _, sc, ok := st.locals.lookup(n.name); ok {
		nv, err := applyOp(sc.vars[n.name], n.op, v, n.line)
		if err != nil {
			return err
		}
		sc.vars[n.name] = nv
		return nil
	}
	if old, ok := st.inst.statics[n.name]; ok {
		nv, err := applyOp(old, n.op, v, n.line)
		if err != nil {
			return err
		}
		st.inst.statics[n.name] = nv
		return nil
	}
	return rtErr(n.line, "assignment to undeclared variable %q", n.name)
}

func applyOp(old Value, op string, v Value, line int) (Value, error) {
	if op == "=" {
		return v, nil
	}
	binOp := strings.TrimSuffix(op, "=")
	return evalBinary(binOp, old, v, line)
}

func zeroOf(typ string) Value {
	switch typ {
	case "int":
		return int64(0)
	case "float":
		return float64(0)
	case "bool":
		return false
	case "string":
		return ""
	}
	return nil
}

func coerce(v Value, typ string, line int) (Value, error) {
	switch typ {
	case "int":
		switch x := v.(type) {
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		}
	case "float":
		switch x := v.(type) {
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		}
	case "bool":
		if b, ok := v.(bool); ok {
			return b, nil
		}
	case "string":
		if s, ok := v.(string); ok {
			return s, nil
		}
	}
	return nil, rtErr(line, "cannot initialize %s with %T", typ, v)
}

func (st *execState) evalBool(e expr, line int) (bool, error) {
	v, err := st.eval(e)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, rtErr(line, "condition is %T, not bool", v)
	}
	return b, nil
}

func (st *execState) eval(e expr) (Value, error) {
	switch n := e.(type) {
	case *intLit:
		return n.v, nil
	case *floatLit:
		return n.v, nil
	case *boolLit:
		return n.v, nil
	case *stringLit:
		return n.v, nil

	case *identExpr:
		if v, _, ok := st.locals.lookup(n.name); ok {
			return v, nil
		}
		if v, ok := st.inst.statics[n.name]; ok {
			return v, nil
		}
		return nil, rtErr(n.line, "undefined variable %q", n.name)

	case *fieldExpr:
		recv, err := st.eval(n.recv)
		if err != nil {
			return nil, err
		}
		rec, ok := recv.(Record)
		if !ok {
			return nil, rtErr(n.line, "field access on non-record %T", recv)
		}
		v, ok := rec.Field(n.field)
		if !ok {
			return nil, rtErr(n.line, "record has no field %q", n.field)
		}
		return v, nil

	case *callExpr:
		fn, ok := st.inst.builtins[n.name]
		if !ok {
			return nil, rtErr(n.line, "unknown function %q", n.name)
		}
		args := make([]Value, len(n.args))
		for i, a := range n.args {
			v, err := st.eval(a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		v, err := fn(args)
		if err != nil {
			return nil, rtErr(n.line, "%s: %v", n.name, err)
		}
		return v, nil

	case *unaryExpr:
		v, err := st.eval(n.x)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case "-":
			switch x := v.(type) {
			case int64:
				return -x, nil
			case float64:
				return -x, nil
			}
			return nil, rtErr(n.line, "unary - on %T", v)
		case "!":
			if b, ok := v.(bool); ok {
				return !b, nil
			}
			return nil, rtErr(n.line, "unary ! on %T", v)
		}
		return nil, rtErr(n.line, "unknown unary op %q", n.op)

	case *binaryExpr:
		// Short-circuit logical operators.
		if n.op == "&&" || n.op == "||" {
			lb, err := st.evalBool(n.l, n.line)
			if err != nil {
				return nil, err
			}
			if n.op == "&&" && !lb {
				return false, nil
			}
			if n.op == "||" && lb {
				return true, nil
			}
			return st.evalBool(n.r, n.line)
		}
		l, err := st.eval(n.l)
		if err != nil {
			return nil, err
		}
		r, err := st.eval(n.r)
		if err != nil {
			return nil, err
		}
		return evalBinary(n.op, l, r, n.line)
	}
	return nil, fmt.Errorf("ecode: unknown expression %T", e)
}

func evalBinary(op string, l, r Value, line int) (Value, error) {
	// String operations.
	if ls, ok := l.(string); ok {
		rs, ok := r.(string)
		if !ok {
			return nil, rtErr(line, "mixed string/%T operands", r)
		}
		switch op {
		case "+":
			return ls + rs, nil
		case "==":
			return ls == rs, nil
		case "!=":
			return ls != rs, nil
		case "<":
			return ls < rs, nil
		case "<=":
			return ls <= rs, nil
		case ">":
			return ls > rs, nil
		case ">=":
			return ls >= rs, nil
		}
		return nil, rtErr(line, "op %q not defined on strings", op)
	}
	// Bool equality.
	if lb, ok := l.(bool); ok {
		rb, ok := r.(bool)
		if !ok {
			return nil, rtErr(line, "mixed bool/%T operands", r)
		}
		switch op {
		case "==":
			return lb == rb, nil
		case "!=":
			return lb != rb, nil
		}
		return nil, rtErr(line, "op %q not defined on bools", op)
	}
	// Numeric: promote int to float when mixed.
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, rtErr(line, "integer division by zero")
			}
			return li / ri, nil
		case "%":
			if ri == 0 {
				return nil, rtErr(line, "integer modulo by zero")
			}
			return li % ri, nil
		case "==":
			return li == ri, nil
		case "!=":
			return li != ri, nil
		case "<":
			return li < ri, nil
		case "<=":
			return li <= ri, nil
		case ">":
			return li > ri, nil
		case ">=":
			return li >= ri, nil
		}
		return nil, rtErr(line, "unknown op %q", op)
	}
	lf, lOK := toFloat(l)
	rf, rOK := toFloat(r)
	if !lOK || !rOK {
		return nil, rtErr(line, "op %q on %T and %T", op, l, r)
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, rtErr(line, "division by zero")
		}
		return lf / rf, nil
	case "==":
		return lf == rf, nil
	case "!=":
		return lf != rf, nil
	case "<":
		return lf < rf, nil
	case "<=":
		return lf <= rf, nil
	case ">":
		return lf > rf, nil
	case ">=":
		return lf >= rf, nil
	}
	return nil, rtErr(line, "op %q not defined on floats", op)
}
