// Package ecode implements a subset of the E-Code language (a C subset)
// used to express SysProf Custom Performance Analyzers. The paper
// downloads CPAs into the kernel and compiles them with dynamic code
// generation; here programs are compiled to an AST and interpreted, which
// preserves the property that matters — analyzers installable at runtime
// without rebuilding anything.
//
// Supported language: int/float/bool/string variables ("static" ones
// persist across invocations), arithmetic and logical expressions, if/else,
// for loops, return, builtin and host-provided functions, and field access
// on host-bound records (e.g. ev.bytes).
package ecode

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct // operators and punctuation
	tokKeyword
)

var keywords = map[string]bool{
	"int": true, "float": true, "bool": true, "string": true,
	"static": true, "if": true, "else": true, "for": true,
	"return": true, "true": true, "false": true, "break": true, "while": true,
	"continue": true,
}

type token struct {
	kind tokKind
	text string
	pos  int // byte offset, for error messages
	line int
}

// SyntaxError reports a compile-time problem with position info.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("ecode: line %d: %s", e.Line, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

var punct2 = []string{"&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "++", "--"}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, &SyntaxError{Line: l.line, Msg: "unterminated block comment"}
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return l.scan()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) scan() (token, error) {
	start, line := l.pos, l.line
	c := l.src[l.pos]

	// ASCII letters only: the check must agree with isIdentChar, or a
	// byte like 0xdb (a letter as a rune, not an ident char) would
	// produce an empty token without advancing — an infinite loop.
	if isIdentStart(c) {
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, pos: start, line: line}, nil
	}

	if c >= '0' && c <= '9' {
		isFloat := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch >= '0' && ch <= '9' {
				l.pos++
			} else if ch == '.' && !isFloat && l.pos+1 < len(l.src) &&
				l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
				isFloat = true
				l.pos++
			} else {
				break
			}
		}
		kind := tokInt
		if isFloat {
			kind = tokFloat
		}
		return token{kind: kind, text: l.src[start:l.pos], pos: start, line: line}, nil
	}

	if c == '"' {
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			ch := l.src[l.pos]
			if ch == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				default:
					return token{}, &SyntaxError{Line: line, Msg: "bad escape in string"}
				}
				l.pos++
				continue
			}
			if ch == '\n' {
				return token{}, &SyntaxError{Line: line, Msg: "unterminated string"}
			}
			sb.WriteByte(ch)
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, &SyntaxError{Line: line, Msg: "unterminated string"}
		}
		l.pos++ // closing quote
		return token{kind: tokString, text: sb.String(), pos: start, line: line}, nil
	}

	for _, p2 := range punct2 {
		if strings.HasPrefix(l.src[l.pos:], p2) {
			l.pos += 2
			return token{kind: tokPunct, text: p2, pos: start, line: line}, nil
		}
	}
	if strings.ContainsRune("+-*/%<>=!(){};,.", rune(c)) {
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start, line: line}, nil
	}
	return token{}, &SyntaxError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= '0' && c <= '9') ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
