package ecode

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite verifier golden .want files")

// testEventSchema mirrors the CPA-visible kernel event schema
// (core.EventSchema) without importing core, which would cycle.
func testEventSchema() RecordSchema {
	return RecordSchema{
		"type": TString, "time": TInt, "node": TInt, "cpu": TInt,
		"pid": TInt, "pid2": TInt, "bytes": TInt, "aux": TInt,
		"msgid": TInt, "seq": TInt, "last": TBool, "proc": TString,
		"src_node": TInt, "src_port": TInt, "dst_node": TInt, "dst_port": TInt,
	}
}

func testVerifyEnv(name string) VerifyEnv {
	return VerifyEnv{
		Name:    name,
		Records: map[string]RecordSchema{"ev": testEventSchema()},
		Builtins: map[string]BuiltinSig{
			"emit": {Params: []ParamKind{PString, PAny}, Result: RInt, Cost: 4},
		},
	}
}

// fixtureHeader reads the //pass: and //want: directives of a reject
// fixture.
func fixtureHeader(t *testing.T, src string) (pass, want string) {
	t.Helper()
	for _, line := range strings.Split(src, "\n") {
		if v, ok := strings.CutPrefix(line, "//pass: "); ok {
			pass = strings.TrimSpace(v)
		}
		if v, ok := strings.CutPrefix(line, "//want: "); ok {
			want = strings.TrimSpace(v)
		}
	}
	if pass == "" || want == "" {
		t.Fatal("fixture missing //pass: or //want: header")
	}
	return pass, want
}

func fixtures(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "verify", dir, "*.ec"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no %s fixtures: %v", dir, err)
	}
	return paths
}

// TestVerifyAcceptFixtures: every analyzer under accept/ must verify
// clean, with a positive cost estimate under the default ceiling.
func TestVerifyAcceptFixtures(t *testing.T) {
	for _, path := range fixtures(t, "accept") {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Compile(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		v := prog.Verify(testVerifyEnv(filepath.Base(path)))
		if !v.OK {
			t.Errorf("%s: rejected:\n%s", path, v.Render())
		}
		if v.Cost <= 0 || v.Cost > DefaultMaxCost {
			t.Errorf("%s: cost %d out of range (0, %d]", path, v.Cost, DefaultMaxCost)
		}
	}
}

// TestVerifyRejectFixtures pins each reject fixture's rendered verdict
// as a golden .want file (regenerate with -update) and checks every
// diagnostic carries the pass named in the fixture header.
func TestVerifyRejectFixtures(t *testing.T) {
	for _, path := range fixtures(t, "reject") {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		pass, want := fixtureHeader(t, string(src))
		prog, err := Compile(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		v := prog.Verify(testVerifyEnv(filepath.Base(path)))
		if v.OK {
			t.Errorf("%s: accepted, want rejection by %s", path, pass)
			continue
		}
		got := v.Render() + "\n"
		if !strings.Contains(got, want) {
			t.Errorf("%s: verdict does not mention %q:\n%s", path, want, got)
		}
		for _, d := range v.Diags {
			if d.Analyzer != pass {
				t.Errorf("%s: diagnostic from pass %s, fixture expects only %s: %s",
					path, d.Analyzer, pass, d.String())
			}
		}
		wantPath := strings.TrimSuffix(path, ".ec") + ".want"
		if *updateGolden {
			if err := os.WriteFile(wantPath, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		golden, err := os.ReadFile(wantPath)
		if err != nil {
			t.Fatalf("%s: missing golden file (run go test -run RejectFixtures -update): %v", path, err)
		}
		if got != string(golden) {
			t.Errorf("%s: verdict drifted from golden\n got:\n%s\nwant:\n%s", path, got, golden)
		}
	}
}

// TestVerifyPassDisableFlips is the verifier's mutation test: disabling
// the single pass a reject fixture trips must flip it to accepted, for
// every pass — proof that each pass rejects on its own teeth and no
// other pass masks it.
func TestVerifyPassDisableFlips(t *testing.T) {
	tripped := map[string]bool{}
	for _, path := range fixtures(t, "reject") {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		pass, _ := fixtureHeader(t, string(src))
		tripped[pass] = true
		prog, err := Compile(string(src))
		if err != nil {
			t.Fatal(err)
		}
		if prog.Verify(testVerifyEnv("x")).OK {
			t.Errorf("%s: not rejected with all passes enabled", path)
		}
		env := testVerifyEnv("x")
		env.Disable = []string{pass}
		if v := prog.Verify(env); !v.OK {
			t.Errorf("%s: still rejected with pass %s disabled:\n%s", path, pass, v.Render())
		}
	}
	for _, pass := range []string{PassTypecheck, PassTermination, PassNoAlloc, PassNoBlock, PassCost} {
		if !tripped[pass] {
			t.Errorf("no reject fixture exercises pass %s", pass)
		}
	}
}

// TestVerifyDiagnosticShape checks the evidence-chain rendering matches
// sysproflint's: file:line:col first line, tab-indented chain frames.
func TestVerifyDiagnosticShape(t *testing.T) {
	prog := MustCompile(`
static int n = 0;
while (true) {
	n += 1;
}
return n;
`)
	v := prog.Verify(testVerifyEnv("hostile.ec"))
	if v.OK {
		t.Fatal("unbounded loop accepted")
	}
	first := regexp.MustCompile(`^hostile\.ec:\d+:\d+: termination: loop is not provably bounded$`)
	lines := strings.Split(v.Render(), "\n")
	if !first.MatchString(lines[0]) {
		t.Errorf("first line %q does not match file:line:col shape", lines[0])
	}
	if len(lines) < 2 {
		t.Fatal("no evidence chain rendered")
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "\t") {
			t.Errorf("chain line %q not tab-indented", l)
		}
	}
}

// TestVerifyCostEstimate pins the cost model's loop multiplication: a
// bounded loop's body is charged per proven iteration.
func TestVerifyCostEstimate(t *testing.T) {
	flat := MustCompile(`int a = 1; return a;`).Verify(testVerifyEnv("x"))
	if !flat.OK {
		t.Fatalf("flat program rejected:\n%s", flat.Render())
	}
	loop := MustCompile(`
int a = 0;
for (int i = 0; i < 100; i++) {
	a += 2;
}
return a;
`).Verify(testVerifyEnv("x"))
	if !loop.OK {
		t.Fatalf("loop program rejected:\n%s", loop.Render())
	}
	if loop.Cost < 100 {
		t.Errorf("loop cost %d does not reflect 100 proven iterations", loop.Cost)
	}
	if loop.Cost <= flat.Cost {
		t.Errorf("loop cost %d not greater than flat cost %d", loop.Cost, flat.Cost)
	}
}

// TestVerifyLoopBounds covers the loop-bound inference matrix beyond
// the fixtures.
func TestVerifyLoopBounds(t *testing.T) {
	cases := []struct {
		name string
		src  string
		ok   bool
	}{
		{"descending", `int n = 0; for (int i = 10; i > 0; i--) { n += i; } return n;`, true},
		{"step-up-ge", `int n = 0; for (int i = 0; 100 >= i; i += 7) { n++; } return n;`, true},
		{"limit-from-const", `int lim = 6 * 4; int n = 0; for (int i = 0; i < lim; i++) { n++; } return n;`, true},
		{"counter-reassigned", `int n = 0; for (int i = 0; i < 10; i++) { i = 0; n++; } return n;`, false},
		{"conditional-step", `int i = 0; int n = 0; while (i < 10) { if (ev.bytes > 0) { i++; } n++; } return n;`, false},
		{"step-away", `int n = 0; for (int i = 0; i < 10; i--) { n++; } return n;`, false},
		{"static-counter-limit", `static int lim = 5; int n = 0; for (int i = 0; i < lim; i++) { n++; } return n;`, false},
		{"zero-iterations", `int n = 0; for (int i = 5; i < 5; i++) { n++; } return n;`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := MustCompile(tc.src).Verify(testVerifyEnv("x"))
			if v.OK != tc.ok {
				t.Errorf("OK=%v, want %v\n%s", v.OK, tc.ok, v.Render())
			}
		})
	}
}

// TestVerifyTypecheckMatrix covers typing rules beyond the fixtures.
func TestVerifyTypecheckMatrix(t *testing.T) {
	cases := []struct {
		name string
		src  string
		ok   bool
	}{
		{"int-float-promote", `float f = 1; f += 2; return f;`, true},
		{"plain-assign-strict", `float f = 1.0; f = 2; return f;`, false},
		{"compound-narrows", `int n = 0; n += 1.5; return n;`, false},
		{"mod-ints-only", `float f = 1.0; return f % 2.0;`, false},
		{"assign-undeclared", `x = 3; return 0;`, false},
		{"assign-to-binding", `ev = 3; return 0;`, false},
		{"bool-cond-required", `int n = 1; if (n) { return 1; } return 0;`, false},
		{"minmax-mixed", `return min(1, 2.0);`, false},
		{"minmax-same", `return min(1, 2, 3);`, true},
		{"len-wants-string", `return len(3);`, false},
		{"unknown-function", `return mystery(1);`, false},
		{"return-record", `return ev;`, false},
		{"static-redeclared-type", `static int n = 0; static float n = 0.0; return 0;`, false},
		{"emit-any-payload", `emit("ch", ev.last); return 0;`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := MustCompile(tc.src).Verify(testVerifyEnv("x"))
			if v.OK != tc.ok {
				t.Errorf("OK=%v, want %v\n%s", v.OK, tc.ok, v.Render())
			}
		})
	}
}
