package ecode

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// diffRun executes src through both the interpreter and the compiled
// closures with the same bindings and requires identical outcomes:
// either both error, or both succeed with equal values.
func diffRun(t *testing.T, src string, bindings map[string]Value, extra map[string]Builtin) (Value, error) {
	t.Helper()
	prog := MustCompile(src)
	iv, ierr := prog.NewInstance(WithBuiltins(extra)).Run(bindings)

	c, verdict, err := prog.CompileVerified(testVerifyEnv("diff"))
	if err != nil {
		t.Fatalf("CompileVerified rejected:\n%s\n%v", verdict.Render(), err)
	}
	ci, err := c.NewInstance(extra)
	if err != nil {
		t.Fatal(err)
	}
	cv, cerr := ci.Run(bindings)

	if (ierr != nil) != (cerr != nil) {
		t.Fatalf("error divergence: interp err=%v, compiled err=%v", ierr, cerr)
	}
	if ierr != nil {
		// Arithmetic errors must match exactly; both are RuntimeErrors.
		if ierr.Error() != cerr.Error() {
			t.Fatalf("error text divergence: interp %q, compiled %q", ierr, cerr)
		}
		return nil, ierr
	}
	if !reflect.DeepEqual(iv, cv) {
		t.Fatalf("value divergence: interp %#v, compiled %#v", iv, cv)
	}
	return cv, nil
}

func testEvent() Record {
	return MapRecord{
		"type": "net_rx", "time": int64(1000), "node": int64(1), "cpu": int64(0),
		"pid": int64(42), "pid2": int64(0), "bytes": int64(1500), "aux": int64(7),
		"msgid": int64(9), "seq": int64(3), "last": true, "proc": "nginx",
		"src_node": int64(1), "src_port": int64(80), "dst_node": int64(2), "dst_port": int64(9090),
	}
}

// TestCompiledMatchesInterpreter is the semantics corpus: every program
// must produce identical results from the tree-walker and the compiled
// closures.
func TestCompiledMatchesInterpreter(t *testing.T) {
	ev := map[string]Value{"ev": testEvent()}
	cases := []struct {
		name string
		src  string
	}{
		{"arith-int", `return (2 + 3) * 4 - 10 / 2;`},
		{"arith-float", `return 1.5 * 4.0 + 0.25;`},
		{"arith-mixed-promote", `return 3 + 0.5;`},
		{"arith-mod", `return 17 % 5;`},
		{"unary-neg", `int a = 5; return -a + -2;`},
		{"unary-not", `bool b = false; if (!b) { return 1; } return 0;`},
		{"precedence", `return 2 + 3 * 4;`},
		{"compare-chain", `if (1 < 2 && 2 <= 2 && 3 > 2 && 3 >= 3 && 1 != 2 && 2 == 2) { return 1; } return 0;`},
		{"compare-mixed", `if (1 < 1.5) { return 1; } return 0;`},
		{"string-concat", `string s = "a" + "b"; return s + "c";`},
		{"string-compare", `if ("abc" < "abd" && "x" == "x") { return 1; } return 0;`},
		{"short-circuit-and", `int n = 0; if (false && 1 / n == 0) { return 1; } return 0;`},
		{"short-circuit-or", `int n = 0; if (true || 1 / n == 0) { return 1; } return 0;`},
		{"if-else-chain", `int x = 7; if (x > 10) { return 1; } else if (x > 5) { return 2; } else { return 3; }`},
		{"for-loop-sum", `int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s;`},
		{"while-loop", `int i = 0; int s = 0; while (i < 8) { s += 2; i++; } return s;`},
		{"nested-loops", `int s = 0; for (int i = 0; i < 4; i++) { for (int j = 0; j < 3; j++) { s += i * j; } } return s;`},
		{"break", `int s = 0; for (int i = 0; i < 100; i++) { if (i == 5) { break; } s += 1; } return s;`},
		{"continue", `int s = 0; for (int i = 0; i < 10; i++) { if (i % 2 == 0) { continue; } s += i; } return s;`},
		{"return-in-loop", `for (int i = 0; i < 10; i++) { if (i == 3) { return i * 100; } } return -1;`},
		{"shadowing", `int x = 1; if (true) { int x = 2; x += 10; } return x;`},
		{"loop-body-decl", `int s = 0; for (int i = 0; i < 5; i++) { int d = i * 2; s += d; } return s;`},
		{"compound-ops", `int n = 10; n += 5; n -= 3; n *= 2; n /= 4; return n;`},
		{"compound-float", `float f = 10.0; f /= 4.0; f *= 2.0; return f;`},
		{"string-append", `string s = "x"; s += "y"; return len(s);`},
		{"decl-coerce-int", `int n = 3.9; return n;`},
		{"decl-coerce-float", `float f = 3; return f;`},
		{"zero-init", `int a; float b; bool c; string d; if (!c && a == 0 && b == 0.0 && d == "") { return 1; } return 0;`},
		{"field-int", `return ev.bytes + ev.aux;`},
		{"field-string", `if (ev.type == "net_rx" && contains(ev.proc, "ngi")) { return 1; } return 0;`},
		{"field-bool", `if (ev.last) { return ev.seq; } return -1;`},
		{"builtin-len", `return len("hello") + len(ev.proc);`},
		{"builtin-abs", `return abs(-5) + abs(5);`},
		{"builtin-minmax", `return min(3, 1, 2) + max(3, 1, 2);`},
		{"builtin-minmax-float", `if (min(1.5, 2.5) == 1.5) { return 1; } return 0;`},
		{"fall-off-end", `int n = 1; n += 1;`},
		{"bare-return", `if (1 < 2) { return; } return 1;`},
		{"div-by-zero-int", `int z = 0; return 1 / z;`},
		{"mod-by-zero", `int z = 0; return 1 % z;`},
		{"div-by-zero-float", `float z = 0.0; return 1.0 / z;`},
		{"compound-div-zero", `int n = 4; int z = 0; n /= z; return n;`},
		{"realistic-cpa", `
static int n = 0;
static float sum = 0.0;
if (ev.type == "net_rx" && ev.bytes > 512) {
	n++;
	sum += ev.bytes;
}
if (n > 0) {
	return sum / n;
}
return 0.0;
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diffRun(t, tc.src, ev, nil)
		})
	}
}

// TestCompiledStaticsPersist mirrors TestStaticPersistsAcrossRuns: the
// compiled instance must accumulate static state identically, and
// Static() must match the interpreter's visibility rules.
func TestCompiledStaticsPersist(t *testing.T) {
	src := `
static int count = 0;
static float total = 0.0;
count++;
total += ev.bytes;
return count;
`
	prog := MustCompile(src)
	c, _, err := prog.CompileVerified(testVerifyEnv("statics"))
	if err != nil {
		t.Fatal(err)
	}
	ci, err := c.NewInstance(nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := prog.NewInstance()
	bindings := map[string]Value{"ev": testEvent()}

	if _, ok := ci.Static("count"); ok {
		t.Error("Static visible before first run")
	}
	for run := 1; run <= 3; run++ {
		iv, err := inst.Run(bindings)
		if err != nil {
			t.Fatal(err)
		}
		cv, err := ci.Run(bindings)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(iv, cv) {
			t.Fatalf("run %d: interp %v, compiled %v", run, iv, cv)
		}
		is, _ := inst.Static("total")
		cs, ok := ci.Static("total")
		if !ok || !reflect.DeepEqual(is, cs) {
			t.Fatalf("run %d: static total interp %v, compiled %v (ok=%v)", run, is, cs, ok)
		}
	}
	if v, _ := ci.Static("count"); v != int64(3) {
		t.Errorf("count = %v after 3 runs, want 3", v)
	}
	if _, ok := ci.Static("missing"); ok {
		t.Error("Static returned a value for an undeclared name")
	}
}

// TestCompiledInstancesIsolated: two instances of one Compiled must not
// share static state or argument buffers.
func TestCompiledInstancesIsolated(t *testing.T) {
	c, _, err := MustCompile(`static int n = 0; n += len(ev.proc); return n;`).
		CompileVerified(testVerifyEnv("iso"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.NewInstance(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.NewInstance(nil)
	if err != nil {
		t.Fatal(err)
	}
	bindings := map[string]Value{"ev": testEvent()}
	if _, err := a.Run(bindings); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(bindings); err != nil {
		t.Fatal(err)
	}
	v, err := b.Run(bindings)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(5) { // len("nginx"), not accumulated from a
		t.Errorf("instance b saw %v, want 5 — static state leaked across instances", v)
	}
}

// TestCompiledCustomBuiltin: extra builtins resolve by name at
// NewInstance time and receive evaluated arguments.
func TestCompiledCustomBuiltin(t *testing.T) {
	var got []Value
	extra := map[string]Builtin{
		"emit": func(args []Value) (Value, error) {
			got = append(got, args...)
			return int64(len(args)), nil
		},
	}
	v, err := diffRunT(t, `emit("chan", ev.bytes); return emit("x", 1);`,
		map[string]Value{"ev": testEvent()}, extra)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(2) {
		t.Errorf("emit returned %v, want 2", v)
	}
	// Both engines ran, so the builtin saw each call twice.
	want := []Value{"chan", int64(1500), "x", int64(1), "chan", int64(1500), "x", int64(1)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("emit args %#v, want %#v", got, want)
	}
}

// diffRunT is diffRun for tests that also need the return value when
// the builtin has call-order side effects.
func diffRunT(t *testing.T, src string, bindings map[string]Value, extra map[string]Builtin) (Value, error) {
	t.Helper()
	return diffRun(t, src, bindings, extra)
}

// TestCompiledMissingBuiltin: an unresolvable builtin fails at
// NewInstance, not mid-run on the hot path.
func TestCompiledMissingBuiltin(t *testing.T) {
	c, _, err := MustCompile(`emit("x", 1); return 0;`).CompileVerified(testVerifyEnv("mb"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewInstance(nil); err == nil || !strings.Contains(err.Error(), "emit") {
		t.Errorf("NewInstance error = %v, want missing-builtin mention of emit", err)
	}
}

// TestCompiledMissingBinding: Run rejects absent or mistyped record
// bindings up front.
func TestCompiledMissingBinding(t *testing.T) {
	c, _, err := MustCompile(`return ev.bytes;`).CompileVerified(testVerifyEnv("mbind"))
	if err != nil {
		t.Fatal(err)
	}
	ci, err := c.NewInstance(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ci.Run(nil); err == nil || !strings.Contains(err.Error(), `"ev"`) {
		t.Errorf("missing binding: err = %v", err)
	}
	if _, err := ci.Run(map[string]Value{"ev": int64(3)}); err == nil || !strings.Contains(err.Error(), "Record") {
		t.Errorf("mistyped binding: err = %v", err)
	}
}

// TestCompileVerifiedRejects: a hostile program never reaches the
// compiler; the error carries the verifier's evidence chain.
func TestCompileVerifiedRejects(t *testing.T) {
	c, v, err := MustCompile(`while (true) { }`).CompileVerified(testVerifyEnv("hostile.ec"))
	if c != nil {
		t.Fatal("hostile program compiled")
	}
	if v == nil || v.OK {
		t.Fatal("verdict missing or OK")
	}
	if err == nil || !strings.Contains(err.Error(), "not provably bounded") {
		t.Errorf("err = %v, want termination diagnostic", err)
	}
}

// TestCompiledCost: the verifier's estimate rides along on the
// artifact for controller status reporting.
func TestCompiledCost(t *testing.T) {
	c, v, err := MustCompile(`int n = 0; for (int i = 0; i < 50; i++) { n += i; } return n;`).
		CompileVerified(testVerifyEnv("cost"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Cost() != v.Cost || c.Cost() < 50 {
		t.Errorf("Cost() = %d, verdict %d", c.Cost(), v.Cost)
	}
	if c.Name() != "cost" {
		t.Errorf("Name() = %q", c.Name())
	}
}

// TestCompiledNoStepLimit: the proof is the budget — a verified 10k
// iteration loop runs to completion even though the interpreter's
// default guard would allow it too; what matters is the compiled path
// has no counter to trip (exercised with a limit far below the work).
func TestCompiledNoStepLimit(t *testing.T) {
	src := `int s = 0; for (int i = 0; i < 10000; i++) { s += 1; } return s;`
	bindings := map[string]Value{"ev": testEvent()}
	prog := MustCompile(src)
	if _, err := prog.NewInstance(WithStepLimit(100)).Run(bindings); err == nil {
		t.Fatal("interpreter step limit did not trip — test premise broken")
	}
	env := testVerifyEnv("nolimit")
	env.MaxCost = 100_000
	c, _, err := prog.CompileVerified(env)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := c.NewInstance(nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ci.Run(bindings)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(10000) {
		t.Errorf("got %v, want 10000", v)
	}
}

// TestCompiledRuntimeErrorLine: arithmetic faults keep their source
// line through compilation.
func TestCompiledRuntimeErrorLine(t *testing.T) {
	c, _, err := MustCompile("int z = 0;\nreturn 1 / z;").CompileVerified(testVerifyEnv("line"))
	if err != nil {
		t.Fatal(err)
	}
	ci, err := c.NewInstance(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := ci.Run(map[string]Value{"ev": testEvent()})
	var re *RuntimeError
	if !errorsAs(rerr, &re) || re.Line != 2 {
		t.Fatalf("err = %v, want RuntimeError at line 2", rerr)
	}
}

func errorsAs(err error, target **RuntimeError) bool {
	for err != nil {
		if re, ok := err.(*RuntimeError); ok {
			*target = re
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestCompiledAllocFree: the steady-state hot path must not allocate
// beyond boxing the returned value.
func TestCompiledAllocFree(t *testing.T) {
	c, _, err := MustCompile(`
static int n = 0;
if (ev.type == "net_rx" && ev.bytes > 512) {
	n++;
}
return n;
`).CompileVerified(testVerifyEnv("alloc"))
	if err != nil {
		t.Fatal(err)
	}
	ci, err := c.NewInstance(nil)
	if err != nil {
		t.Fatal(err)
	}
	bindings := map[string]Value{"ev": testEvent()}
	if _, err := ci.Run(bindings); err != nil { // warm static init
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := ci.Run(bindings); err != nil {
			t.Fatal(err)
		}
	})
	// One boxing alloc for the int return value is acceptable; the
	// interpreter's map-scope walk costs far more.
	if avg > 1 {
		t.Errorf("compiled hot path allocates %.1f/op, want <= 1", avg)
	}
}

var _ = fmt.Sprintf // keep fmt when corpus cases churn
