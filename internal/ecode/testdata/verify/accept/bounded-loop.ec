// Nested constant-bounded loops: the verifier proves 8*4 iterations
// and folds them into the cost estimate.
static int checksum = 0;
int acc = 0;
for (int i = 0; i < 8; i++) {
	for (int j = 0; j <= 3; j++) {
		acc += i * j;
	}
}
checksum += acc;
return checksum;
