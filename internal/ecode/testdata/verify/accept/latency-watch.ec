// The latency-anomaly CPA from examples/custom-analyzer: alerts when a
// request sat in the socket buffer more than twice the running mean.
static int   n      = 0;
static float sum_ns = 0.0;

if (ev.type != "net_user_read") { return 0; }
n++;
sum_ns += ev.aux;
float mean = sum_ns / n;
if (n > 8 && ev.aux > mean * 2.0) {
	emit("latency.alerts", ev.aux);
}
return n;
