// A while loop bounded by a counter declared before the loop with an
// unconditional in-body step.
int i = 0;
int sum = 0;
while (i < 8) {
	sum += i;
	i++;
}
if (ev.bytes > 512) {
	emit("sum", sum);
}
return sum;
