// Event classification across the builtin table's nonblocking set.
static int big = 0;
static int small = 0;
string p = ev.proc;
if (contains(p, "http") && ev.bytes > 1024) {
	big++;
} else {
	small++;
}
int spread = max(big, small) - min(big, small);
if (abs(spread) > 100 && len(p) > 0) {
	emit("imbalance", spread);
}
return spread;
