//pass: typecheck
//want: has no field
static int n = 0;
n += ev.nonexistent;
return n;
