//pass: termination
//want: not a statically known int
int seen = 0;
for (int i = 0; i < ev.bytes; i++) {
	seen += 1;
}
return seen;
