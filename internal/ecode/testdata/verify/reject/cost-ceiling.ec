//pass: cost
//want: exceeds the verifier ceiling
static int acc = 0;
for (int i = 0; i < 1000; i++) {
	for (int j = 0; j < 1000; j++) {
		acc += 1;
	}
}
return acc;
