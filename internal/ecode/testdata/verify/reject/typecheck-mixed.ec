//pass: typecheck
//want: mixed string/int operands
int limit = 3;
if (ev.proc > limit) {
	return 1;
}
return 0;
