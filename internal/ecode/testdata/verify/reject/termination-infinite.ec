//pass: termination
//want: loop is not provably bounded
static int n = 0;
while (true) {
	n += 1;
}
return n;
