//pass: noalloc
//want: string concatenation in a loop
string s = "";
for (int i = 0; i < 4; i++) {
	s += "x";
}
return len(s);
