//pass: noalloc
//want: grows without bound
static string trail = "";
trail += ev.proc;
return len(trail);
