//pass: noblock
//want: blocking builtin "sleep"
static int n = 0;
if (ev.bytes > 1000) {
	sleep(5);
	n++;
}
return n;
