package ecode

// AST node types. Statements and expressions are small tagged structs
// evaluated by the tree-walking interpreter in interp.go.

type stmt interface{ stmtNode() }

type (
	declStmt struct {
		typ    string // "int" | "float" | "bool" | "string"
		static bool
		name   string
		init   expr // may be nil
		line   int
	}
	assignStmt struct {
		name string
		op   string // "=", "+=", "-=", "*=", "/="
		val  expr
		line int
	}
	ifStmt struct {
		cond      expr
		then, els []stmt
		line      int
	}
	forStmt struct {
		init stmt // may be nil
		cond expr // may be nil (infinite)
		post stmt // may be nil
		body []stmt
		line int
	}
	returnStmt struct {
		val  expr // may be nil
		line int
	}
	exprStmt struct {
		e    expr
		line int
	}
	breakStmt    struct{ line int }
	continueStmt struct{ line int }
)

func (*declStmt) stmtNode()     {}
func (*assignStmt) stmtNode()   {}
func (*ifStmt) stmtNode()       {}
func (*forStmt) stmtNode()      {}
func (*returnStmt) stmtNode()   {}
func (*exprStmt) stmtNode()     {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}

type expr interface{ exprNode() }

type (
	intLit    struct{ v int64 }
	floatLit  struct{ v float64 }
	boolLit   struct{ v bool }
	stringLit struct{ v string }
	identExpr struct {
		name string
		line int
	}
	fieldExpr struct {
		recv  expr
		field string
		line  int
	}
	callExpr struct {
		name string
		args []expr
		line int
	}
	unaryExpr struct {
		op   string // "-", "!"
		x    expr
		line int
	}
	binaryExpr struct {
		op   string
		l, r expr
		line int
	}
)

func (*intLit) exprNode()     {}
func (*floatLit) exprNode()   {}
func (*boolLit) exprNode()    {}
func (*stringLit) exprNode()  {}
func (*identExpr) exprNode()  {}
func (*fieldExpr) exprNode()  {}
func (*callExpr) exprNode()   {}
func (*unaryExpr) exprNode()  {}
func (*binaryExpr) exprNode() {}
