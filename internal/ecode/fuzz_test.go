package ecode

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzVerify throws arbitrary source at the full trust pipeline:
// parse, verify, verify again (the verdict must be deterministic), and
// — for accepted programs — compile to closures and run both engines
// against a sample event, requiring identical outcomes. Nothing along
// the way may panic: the verifier fronts the analyzer install path, so
// every byte sequence a client can send must come back as either a
// clean verdict or a diagnostic, never a crash.
func FuzzVerify(f *testing.F) {
	for _, dir := range []string{"accept", "reject"} {
		paths, err := filepath.Glob(filepath.Join("testdata", "verify", dir, "*.ec"))
		if err != nil || len(paths) == 0 {
			f.Fatalf("no %s fixtures: %v", dir, err)
		}
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
	// Adversarial shapes the fixtures don't cover: malformed syntax,
	// runtime arithmetic faults, deep nesting, statics, stray tokens.
	f.Add(`return 1 / 0;`)
	f.Add(`int x = 0; x /= x; return x;`)
	f.Add(`static int n = 0; n += 1; return n;`)
	f.Add(`for (int i = 0; i < 3; i++) { for (int j = 0; j < 3; j++) { emit("t", i * j); } } return 0;`)
	f.Add(`}{`)
	f.Add(`while (true) { emit(`)
	f.Add(`string s = "unterminated`)
	f.Add("\x00\xff")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src)
		if err != nil {
			// Parse errors must at least be stable across compiles.
			_, err2 := Compile(src)
			if err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("nondeterministic compile: %v vs %v", err, err2)
			}
			return
		}
		env := testVerifyEnv("fuzz")
		v1 := prog.Verify(env)
		v2 := prog.Verify(env)
		if v1.OK != v2.OK || v1.Cost != v2.Cost || v1.Render() != v2.Render() {
			t.Fatalf("nondeterministic verdict:\n--- first\nok=%v cost=%d\n%s\n--- second\nok=%v cost=%d\n%s",
				v1.OK, v1.Cost, v1.Render(), v2.OK, v2.Cost, v2.Render())
		}
		if !v1.OK {
			return
		}
		// Accepted programs are safe to execute by construction; both
		// engines must agree on the result (diffRun fails the test on
		// any divergence in value or error text).
		diffRun(t, src, map[string]Value{"ev": testEvent()},
			map[string]Builtin{"emit": func(args []Value) (Value, error) { return int64(0), nil }})
	})
}
