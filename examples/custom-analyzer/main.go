// custom-analyzer: install an E-Code CPA at runtime.
//
// The paper's Custom Performance Analyzers are small programs written in
// a C subset (E-Code), compiled at runtime and run on the kernel event
// fast path. This example installs, through the SysProf controller, a CPA
// that watches socket-buffer residence times and raises an alert whenever
// a request waited more than twice the running average — a latency
// anomaly detector the server's code knows nothing about. It then
// reconfigures monitoring granularity at runtime, as an operator would.
//
// Run with:
//
//	go run ./examples/custom-analyzer
package main

import (
	"fmt"
	"os"
	"time"

	"sysprof/internal/controller"
	"sysprof/internal/core"
	"sysprof/internal/ecode"
	"sysprof/internal/kprof"
	"sysprof/internal/sim"
	"sysprof/internal/simnet"
	"sysprof/internal/simos"
)

// cpaSource is the analyzer, in E-Code. "ev" is the kernel event; for
// net_user_read events, ev.aux carries the socket-buffer residence in
// nanoseconds.
const cpaSource = `
static int   n      = 0;
static float sum_ns = 0.0;

if (ev.type != "net_user_read") { return 0; }
n++;
sum_ns += ev.aux;
float mean = sum_ns / n;
if (n > 8 && ev.aux > mean * 2.0) {
	emit("latency.alerts", ev.aux);
}
return n;
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "custom-analyzer:", err)
		os.Exit(1)
	}
}

func run() error {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	server, err := simos.NewNode(eng, network, "server", simos.Config{})
	if err != nil {
		return err
	}
	client, err := simos.NewNode(eng, network, "client", simos.Config{})
	if err != nil {
		return err
	}
	if err := network.Connect(server.ID(), client.ID()); err != nil {
		return err
	}

	// Controller with an alert sink for CPA emissions.
	var alerts []time.Duration
	ctl := controller.New(func(ch string, v ecode.Value) {
		if ch != "latency.alerts" {
			return
		}
		if ns, ok := v.(int64); ok {
			alerts = append(alerts, time.Duration(ns))
			fmt.Printf("[%8v] ALERT: request sat %v in the socket buffer\n",
				eng.Now().Round(time.Millisecond), time.Duration(ns).Round(time.Microsecond))
		}
	})
	if err := ctl.RegisterNode("server", server.Hub()); err != nil {
		return err
	}
	lpa := core.NewLPA(server.Hub(), core.Config{})
	if err := ctl.AttachLPA("server", "interactions", lpa); err != nil {
		return err
	}

	// Install the CPA exactly as sysprofctl would.
	if err := ctl.InstallCPA("server", "latency-watch", cpaSource,
		kprof.MaskOf(kprof.EvNetUserRead)); err != nil {
		return err
	}
	fmt.Println("installed CPA 'latency-watch' (E-Code, compiled at runtime)")

	// Workload: a server that is healthy for 2 s, then suffers a 60 ms
	// stall (e.g. a GC pause), then recovers.
	ssock := server.MustBind(80)
	server.Spawn("httpd", func(p *simos.Process) {
		var loop func()
		loop = func() {
			p.Recv(ssock, func(m *simos.Message) {
				work := time.Millisecond
				if now := eng.Now(); now > 2*time.Second && now < 2200*time.Millisecond {
					work = 60 * time.Millisecond // the anomaly
				}
				p.Compute(work, func() {
					p.Reply(ssock, m, 2048, nil, loop)
				})
			})
		}
		loop()
	})
	// Several concurrent clients: during the stall their requests pile up
	// in the server's socket buffer, which is exactly what the CPA
	// watches.
	for i := 0; i < 6; i++ {
		csock := client.MustBind(9000 + uint16(i))
		client.Spawn("load", func(p *simos.Process) {
			var loop func()
			loop = func() {
				p.Send(csock, ssock.Addr(), 256, nil, func() {
					p.Recv(csock, func(m *simos.Message) {
						p.Sleep(5*time.Millisecond, loop)
					})
				})
			}
			loop()
		})
	}

	if err := eng.RunUntil(4 * time.Second); err != nil {
		return err
	}

	fmt.Printf("\n%d alerts raised; analyzer state:\n", len(alerts))
	fmt.Print(ctl.Status())

	// Runtime reconfiguration, as an operator would do over sysprofctl.
	if _, err := ctl.Execute("granularity server interactions class"); err != nil {
		return err
	}
	fmt.Println("\nswitched LPA to per-class granularity at runtime:")
	if err := eng.RunFor(time.Second); err != nil {
		return err
	}
	for class, agg := range lpa.Aggregates() {
		fmt.Printf("  %s: %d interactions, mean residence %v\n",
			class, agg.Count, agg.MeanResidence().Round(time.Microsecond))
	}

	if _, err := ctl.Execute("remove-cpa server latency-watch"); err != nil {
		return err
	}
	fmt.Println("removed CPA; monitoring reverted")
	return nil
}
