// nfs-bottleneck: reproduce the paper's §3.2 diagnosis end to end.
//
// A virtual storage service (two clients -> user-level proxy -> two
// back-end NFS servers) runs an Iozone-style write workload. SysProf
// monitors the proxy and a backend; the example then *diagnoses* the
// bottleneck the way a system administrator would — by asking where each
// interaction's time went — and prints the conclusion the paper draws:
// the proxy spends a constant, small amount of user time per request
// while kernel-level queueing grows with load, and the back-end server
// dominates end-to-end latency.
//
// Run with:
//
//	go run ./examples/nfs-bottleneck
package main

import (
	"fmt"
	"os"
	"time"

	"sysprof/internal/apps/iozone"
	"sysprof/internal/apps/nfs"
	"sysprof/internal/core"
	"sysprof/internal/sim"
	"sysprof/internal/simnet"
	"sysprof/internal/simos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nfs-bottleneck:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("virtual storage service: 2 clients -> proxy -> 2 NFS backends")
	fmt.Println("threads  proxy-user  proxy-kernel  backend-total  verdict")

	for _, threads := range []int{1, 4, 16, 32} {
		pu, pk, bt, err := measure(threads)
		if err != nil {
			return err
		}
		verdict := "backend-bound"
		if pk > bt {
			verdict = "proxy-bound"
		}
		fmt.Printf("%7d  %10v  %12v  %13v  %s\n",
			threads, pu.Round(time.Microsecond), pk.Round(time.Microsecond),
			bt.Round(time.Microsecond), verdict)
	}

	fmt.Println()
	fmt.Println("diagnosis (as in the paper):")
	fmt.Println("  - proxy user-level time is ~constant: it only forwards requests")
	fmt.Println("  - proxy kernel-level time grows with threads: requests queue in")
	fmt.Println("    socket buffers waiting for the user-level proxy")
	fmt.Println("  - the back-end server contributes the dominant share of latency,")
	fmt.Println("    so capacity should be added there, not at the proxy")
	return nil
}

// measure runs one thread count and returns the proxy's mean user and
// kernel interaction time and the backend's mean residence.
func measure(threads int) (proxyUser, proxyKernel, backendTotal time.Duration, err error) {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	svc, err := nfs.Build(eng, network, nfs.DefaultConfig())
	if err != nil {
		return 0, 0, 0, err
	}
	proxyLPA := core.NewLPA(svc.Proxy.Hub(), core.Config{WindowSize: 1 << 15})
	backendLPA := core.NewLPA(svc.Backends[0].Hub(), core.Config{WindowSize: 1 << 15})

	for i := 0; i < 2; i++ {
		client, err := simos.NewNode(eng, network, "client", simos.Config{})
		if err != nil {
			return 0, 0, 0, err
		}
		if err := network.Connect(client.ID(), svc.Proxy.ID()); err != nil {
			return 0, 0, 0, err
		}
		if _, err := iozone.Start(client, svc.ProxyAddr(), iozone.Config{
			Threads:     threads,
			WriteSize:   16 * 1024,
			MakeRequest: nfs.NewWriteRequest,
		}); err != nil {
			return 0, 0, 0, err
		}
	}
	if err := eng.RunUntil(2 * time.Second); err != nil {
		return 0, 0, 0, err
	}
	proxyLPA.FlushOpen()
	backendLPA.FlushOpen()

	var nP, nB int
	for _, r := range proxyLPA.Window().Snapshot() {
		if r.Flow.Dst.Port != nfs.ProxyPort {
			continue
		}
		proxyUser += r.UserTime
		proxyKernel += r.KernelTime()
		nP++
	}
	for _, r := range backendLPA.Window().Snapshot() {
		backendTotal += r.Residence()
		nB++
	}
	if nP == 0 || nB == 0 {
		return 0, 0, 0, fmt.Errorf("no interactions observed (threads=%d)", threads)
	}
	return proxyUser / time.Duration(nP), proxyKernel / time.Duration(nP),
		backendTotal / time.Duration(nB), nil
}
