// offline-analysis: capture once, analyze forever.
//
// The paper's GPA "periodically dumps its information onto local disk,
// which can be used later for purposes of auditing, workload prediction,
// and system modeling". This example runs a monitored service whose load
// ramps up, records the kernel event stream to a trace, then — entirely
// offline — rebuilds the interaction records from the trace, derives a
// per-class accounting report, forecasts the arrival rate with Holt
// smoothing, and produces a capacity plan.
//
// Run with:
//
//	go run ./examples/offline-analysis
package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"sysprof/internal/core"
	"sysprof/internal/gpa"
	"sysprof/internal/kprof"
	"sysprof/internal/sim"
	"sysprof/internal/simnet"
	"sysprof/internal/simos"
	"sysprof/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "offline-analysis:", err)
		os.Exit(1)
	}
}

func run() error {
	// ---- Phase 1: live capture -----------------------------------------
	var traceBuf bytes.Buffer
	tw, err := trace.NewWriter(&traceBuf)
	if err != nil {
		return err
	}

	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	server, err := simos.NewNode(eng, network, "api-server", simos.Config{})
	if err != nil {
		return err
	}
	client, err := simos.NewNode(eng, network, "clients", simos.Config{})
	if err != nil {
		return err
	}
	if err := network.Connect(server.ID(), client.ID()); err != nil {
		return err
	}
	tw.Attach(server.Hub(), core.MaskDefault())

	ssock := server.MustBind(443)
	server.Spawn("api", func(p *simos.Process) {
		var loop func()
		loop = func() {
			p.Recv(ssock, func(m *simos.Message) {
				p.Compute(3*time.Millisecond, func() {
					p.Reply(ssock, m, 4096, nil, loop)
				})
			})
		}
		loop()
	})

	// A ramping workload: the request gap shrinks every second, so the
	// arrival rate climbs — the situation capacity planning exists for.
	rng := sim.NewRNG(11)
	csock := client.MustBind(9000)
	client.Spawn("load", func(p *simos.Process) {
		var loop func()
		loop = func() {
			sec := int(eng.Now()/time.Second) + 1
			mean := 50.0 / float64(sec) // ms between requests: 50, 25, 16.7, ...
			gap := time.Duration(rng.Exp(mean) * float64(time.Millisecond))
			p.Send(csock, ssock.Addr(), 512, nil, func() {
				p.Recv(csock, func(m *simos.Message) {
					p.Sleep(gap, loop)
				})
			})
		}
		loop()
	})
	if err := eng.RunUntil(8 * time.Second); err != nil {
		return err
	}
	tw.Detach()
	fmt.Printf("captured %d kernel events (%d KiB trace)\n\n", tw.Events(), traceBuf.Len()/1024)

	// ---- Phase 2: offline analysis from the trace alone -----------------
	var lpa *core.LPA
	if _, err := trace.ReplaySession(&traceBuf, func(node simnet.NodeID, hub *kprof.Hub) {
		if node == server.ID() {
			lpa = core.NewLPA(hub, core.Config{WindowSize: 1 << 16})
		}
	}); err != nil {
		return err
	}
	lpa.FlushOpen()
	recs := lpa.Window().Snapshot()
	fmt.Printf("offline replay rebuilt %d interactions\n\n", len(recs))

	// Feed the rebuilt records into a GPA for accounting + forecasting.
	g := gpa.New(gpa.Config{LoadWindow: time.Hour}, func() time.Duration { return 8 * time.Second })
	var series []int
	bucket := time.Second
	for _, r := range recs {
		g.Ingest(r)
		idx := int(r.Start / bucket)
		for len(series) <= idx {
			series = append(series, 0)
		}
		series[idx]++
	}
	fmt.Println("accounting (auditing/billing view):")
	fmt.Print(g.RenderAccounting())

	fmt.Println("\narrival rate per second (the ramp):")
	for i, v := range series {
		fmt.Printf("  t=%ds: %d req/s\n", i, v)
	}

	pred := gpa.NewPredictor(0.6, 0.4)
	pred.ObserveSeries(series)
	forecast := pred.Forecast(3)
	fmt.Printf("\nforecast rate 3s ahead: %.0f req/s\n", forecast)

	rows := g.Accounting()
	if len(rows) == 0 {
		return fmt.Errorf("no accounting rows")
	}
	cpuPer := rows[0].CPUTime / time.Duration(rows[0].Interactions)
	plan, err := gpa.PlanCapacity(rows[0].Class, forecast, cpuPer, 0.7)
	if err != nil {
		return err
	}
	fmt.Printf("capacity plan for %s: %.2f CPUs of demand at %v/interaction -> %d server(s) at 70%% target utilization\n",
		plan.Class, plan.DemandCPUs, plan.CPUPerInteraction.Round(time.Microsecond), plan.Servers)
	return nil
}
