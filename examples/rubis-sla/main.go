// rubis-sla: enforce service levels with SysProf-guided scheduling (§3.3).
//
// A two-backend RUBiS auction site serves CPU-heavy *bidding* requests
// and network-heavy *comment* requests. Halfway through the run a batch
// job lands on one servlet server. The example runs the experiment twice:
//
//   - plain DWCS with static round-robin dispatch — both classes degrade;
//   - RA-DWCS, where the dispatcher consults SysProf's Global Performance
//     Analyzer and routes requests to the lightly-loaded server — the
//     high-priority bidding class is protected.
//
// Run with:
//
//	go run ./examples/rubis-sla
package main

import (
	"fmt"
	"os"
	"time"

	"sysprof/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rubis-sla:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := bench.DefaultRUBiSConfig()
	cfg.Duration = 20 * time.Second

	cmp, err := bench.RunRUBiSComparison(cfg)
	if err != nil {
		return err
	}
	fmt.Println(cmp.Render())

	bPre, bPost := cmp.DWCS.PrePost(cmp.DWCS.BidSeries)
	rPre, rPost := cmp.RADWCS.PrePost(cmp.RADWCS.BidSeries)
	fmt.Println("takeaway:")
	fmt.Printf("  plain DWCS lost %.0f%% of bidding throughput to the spike;\n",
		(bPre-bPost)/bPre*100)
	fmt.Printf("  RA-DWCS, using SysProf's per-server load data, lost %.0f%%.\n",
		(rPre-rPost)/rPre*100)
	return nil
}
