// operator-toolbox: the day-2 diagnosis workflow.
//
// A monitored API server serves three clients; one of them is a noisy
// neighbour hammering the service. This example walks the workflow an
// operator would follow with SysProf:
//
//  1. watch per-client resource accounting (the paper's "resources
//     consumed by sets of clients") to spot the noisy client,
//  2. set an SLA watcher on response residence and catch the breach,
//  3. zoom into one suspect flow with the per-packet FlowInspector and
//     read the Figure-1 style breakdown of a slow interaction.
//
// Run with:
//
//	go run ./examples/operator-toolbox
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"sysprof/internal/core"
	"sysprof/internal/sim"
	"sysprof/internal/simnet"
	"sysprof/internal/simos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "operator-toolbox:", err)
		os.Exit(1)
	}
}

func run() error {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	server, err := simos.NewNode(eng, network, "api", simos.Config{})
	if err != nil {
		return err
	}

	// Three client machines; client 3 floods with no think time.
	thinkTimes := map[int]time.Duration{1: 20 * time.Millisecond, 2: 25 * time.Millisecond, 3: 0}
	clients := make([]*simos.Node, 0, 3)
	for i := 1; i <= 3; i++ {
		c, err := simos.NewNode(eng, network, fmt.Sprintf("client-%d", i), simos.Config{})
		if err != nil {
			return err
		}
		if err := network.Connect(c.ID(), server.ID()); err != nil {
			return err
		}
		clients = append(clients, c)
	}

	// Step 1: per-client accounting. One LPA at class granularity with
	// the client classifier; plus an SLA watcher on residence.
	var breaches int
	var firstBreachFlow simnet.FlowKey
	sla := core.NewSLAWatcher([]core.SLA{
		{MaxResidence: 10 * time.Millisecond, Window: 20, MaxViolations: 5},
	}, func(s core.SLA, r *core.Record) {
		if breaches == 0 {
			firstBreachFlow = r.Flow
			fmt.Printf("[%8v] SLA BREACH: interaction on %s took %v (bound %v)\n",
				eng.Now().Round(time.Millisecond), r.Flow,
				r.Residence().Round(time.Microsecond), s.MaxResidence)
		}
		breaches++
	})
	lpa := core.NewLPA(server.Hub(), core.Config{
		Granularity: core.PerClass,
		Classify:    core.ClientClassifier(),
		OnComplete:  sla.OnComplete,
	})
	defer lpa.Close()

	// The service: 2 ms per request, single-threaded.
	ssock := server.MustBind(443)
	server.Spawn("api", func(p *simos.Process) {
		var loop func()
		loop = func() {
			p.Recv(ssock, func(m *simos.Message) {
				p.Compute(2*time.Millisecond, func() {
					p.Reply(ssock, m, 4096, nil, loop)
				})
			})
		}
		loop()
	})
	for i, c := range clients {
		think := thinkTimes[i+1]
		// The well-behaved clients run one session; the noisy neighbour
		// (zero think time) runs eight concurrent ones.
		sessions := 1
		if think == 0 {
			sessions = 8
		}
		for s := 0; s < sessions; s++ {
			csock := c.MustBind(uint16(9000 + s))
			c.Spawn("load", func(p *simos.Process) {
				var loop func()
				loop = func() {
					p.Send(csock, ssock.Addr(), 512, nil, func() {
						p.Recv(csock, func(m *simos.Message) {
							if think > 0 {
								p.Sleep(think, loop)
								return
							}
							loop()
						})
					})
				}
				loop()
			})
		}
	}

	if err := eng.RunUntil(3 * time.Second); err != nil {
		return err
	}

	fmt.Println("\nstep 1 - per-client accounting (who is using the server?):")
	aggs := lpa.Aggregates()
	names := make([]string, 0, len(aggs))
	for n := range aggs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := aggs[n]
		cpu := a.TotalUser + a.TotalKernel - a.TotalBufWait // exclude queueing
		fmt.Printf("  %-10s %5d interactions, %8v CPU, mean residence %v\n",
			n, a.Count, cpu.Round(time.Millisecond),
			a.MeanResidence().Round(time.Microsecond))
	}
	fmt.Printf("\nstep 2 - SLA watcher raised %d breaches; first on flow %s\n",
		breaches, firstBreachFlow)

	// Step 3: zoom into the breaching flow with a packet inspector.
	ins := core.NewFlowInspector(server.Hub(), firstBreachFlow, 12)
	defer ins.Close()
	if err := eng.RunFor(50 * time.Millisecond); err != nil {
		return err
	}
	fmt.Println("\nstep 3 - per-packet inspection of the suspect flow:")
	fmt.Print(ins.Render())
	fmt.Println("\nthe packet timeline shows requests queueing in the socket buffer")
	fmt.Println("behind the flood - the noisy neighbour, found without touching the app.")
	return nil
}
