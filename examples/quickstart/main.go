// Quickstart: monitor a client-server exchange with SysProf.
//
// This example builds the smallest useful deployment — one monitored web
// server, one client — attaches an interaction LPA to the server's
// kernel, runs ten request/response pairs, and prints the per-interaction
// resource breakdown SysProf captured, all without touching the
// application's code.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"sysprof/internal/core"
	"sysprof/internal/sim"
	"sysprof/internal/simnet"
	"sysprof/internal/simos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A simulation engine, a network, and two machines.
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	server, err := simos.NewNode(eng, network, "server", simos.Config{})
	if err != nil {
		return err
	}
	client, err := simos.NewNode(eng, network, "client", simos.Config{})
	if err != nil {
		return err
	}
	if err := network.Connect(server.ID(), client.ID()); err != nil {
		return err
	}

	// Attach SysProf: one Local Performance Analyzer on the server's
	// instrumentation hub. No application changes required.
	lpa := core.NewLPA(server.Hub(), core.Config{})

	// The application under observation: an echo-ish web server that
	// computes for 2 ms and replies with an 8 KiB page.
	ssock := server.MustBind(80)
	server.Spawn("httpd", func(p *simos.Process) {
		var loop func()
		loop = func() {
			p.Recv(ssock, func(m *simos.Message) {
				p.Compute(2*time.Millisecond, func() {
					p.Reply(ssock, m, 8192, nil, loop)
				})
			})
		}
		loop()
	})

	// A client sending ten requests, back to back.
	csock := client.MustBind(9000)
	client.Spawn("curl", func(p *simos.Process) {
		var loop func(i int)
		loop = func(i int) {
			if i == 0 {
				return
			}
			p.Send(csock, ssock.Addr(), 512, nil, func() {
				p.Recv(csock, func(m *simos.Message) { loop(i - 1) })
			})
		}
		loop(10)
	})

	// Run the virtual cluster to completion and flush the analyzer.
	if err := eng.Run(); err != nil {
		return err
	}
	lpa.FlushOpen()

	fmt.Println("interactions observed at the server:")
	fmt.Println("  id  server   user      kernel    bufwait   total     req->resp bytes")
	for _, r := range lpa.Window().Snapshot() {
		fmt.Printf("  %2d  %-7s  %-8v  %-8v  %-8v  %-8v  %d -> %d\n",
			r.ID, r.ServerProc, r.UserTime.Round(time.Microsecond),
			r.KernelTime().Round(time.Microsecond),
			r.BufferWait.Round(time.Microsecond),
			r.Residence().Round(time.Microsecond),
			r.ReqBytes, r.RespBytes)
	}
	st := lpa.Stats()
	fmt.Printf("analyzer: %d kernel events -> %d interactions across %d flows\n",
		st.Events, st.Interactions, st.OpenFlows)
	return nil
}
