// Command sysprofd runs a live SysProf node: it hosts a small simulated
// cluster (a monitored web server plus a client generating traffic),
// attaches the full monitoring stack — Kprof instrumentation, an
// interaction LPA, the dissemination daemon — and exposes it over real
// sockets:
//
//   - the /proc virtual filesystem over HTTP (-http),
//   - interaction records over TCP publish-subscribe (-pubsub), which
//     cmd/gpad can subscribe to,
//   - the controller's management protocol over TCP (-ctl), which
//     cmd/sysprofctl drives.
//
// Virtual time is paced against wall-clock time, so the daemon behaves
// like a long-running monitored system.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sysprof/internal/apps/httperf"
	"sysprof/internal/apps/iozone"
	"sysprof/internal/apps/nfs"
	"sysprof/internal/apps/rubis"
	"sysprof/internal/controller"
	"sysprof/internal/core"
	"sysprof/internal/dissem"
	"sysprof/internal/ecode"
	"sysprof/internal/gpa"
	"sysprof/internal/ntpclock"
	"sysprof/internal/pbio"
	"sysprof/internal/procfs"
	"sysprof/internal/pubsub"
	"sysprof/internal/sim"
	"sysprof/internal/simnet"
	"sysprof/internal/simos"
	"sysprof/internal/trace"
)

func main() {
	httpAddr := flag.String("http", "127.0.0.1:8070", "procfs HTTP address")
	pubsubAddr := flag.String("pubsub", "127.0.0.1:8071", "pub-sub TCP address")
	ctlAddr := flag.String("ctl", "127.0.0.1:8072", "controller TCP address")
	pace := flag.Duration("pace", 100*time.Millisecond, "virtual-time advance per wall tick")
	tracePath := flag.String("trace", "", "record the kernel event stream (PBIO) to this file")
	topology := flag.String("topology", "simple", "hosted cluster: simple (web server), nfs (storage proxy), rubis (auction site)")
	psQueue := flag.Int("pubsub-queue", 256, "per-subscriber send-queue depth (frames)")
	psOverflow := flag.String("pubsub-overflow", "drop", "send-queue overflow policy: drop (drop-oldest), block (block-with-deadline), or adaptive (per-subscriber, from observed drain rate)")
	psEvict := flag.Int("pubsub-evict", 64, "evict a subscriber after this many consecutive overflows (0 = never)")
	fedEndpoints := flag.String("federation", "", "comma-separated gpad shard query endpoints; attaches a federation frontend to the controller (sysprofctl federation ...)")
	ntpInterval := flag.Duration("ntp-interval", 0, "automatic NTP clock-error re-measurement cadence for the monitored node (0 disables; retune live with sysprofctl ntpinterval)")
	flag.Parse()
	psPolicy, err := pubsub.ParseOverflowPolicy(*psOverflow)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysprofd:", err)
		os.Exit(2)
	}
	brokerOpts := []pubsub.Option{
		pubsub.WithQueueDepth(*psQueue),
		pubsub.WithOverflowPolicy(psPolicy),
		pubsub.WithEvictAfterOverflows(*psEvict),
	}
	if err := run(*httpAddr, *pubsubAddr, *ctlAddr, *pace, *tracePath, *topology, *fedEndpoints, *ntpInterval, brokerOpts); err != nil {
		fmt.Fprintln(os.Stderr, "sysprofd:", err)
		os.Exit(1)
	}
}

func run(httpAddr, pubsubAddr, ctlAddr string, pace time.Duration, tracePath, topology, fedEndpoints string, ntpInterval time.Duration, brokerOpts []pubsub.Option) error {
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	server, err := buildTopology(eng, network, topology)
	if err != nil {
		return err
	}

	reg := pbio.NewRegistry()
	if err := dissem.RegisterFormats(reg); err != nil {
		return err
	}
	broker := pubsub.NewBroker(reg, brokerOpts...)
	// Route records to sharded subscribers (federated gpad tier) by flow
	// hash; unsharded subscribers still see the full stream.
	broker.SetShardKeyFunc(dissem.ShardKey)
	defer broker.Close()
	fs := procfs.New()

	daemon := dissem.New(eng, broker, fs, dissem.Config{
		NodeName:      server.Name(),
		FlushInterval: 250 * time.Millisecond,
		MaxWindowAge:  2 * time.Second,
	})
	lpa := core.NewLPA(server.Hub(), core.Config{OnFull: daemon.OnFull})
	daemon.Serve(lpa)
	daemon.Start()

	// Second analyzer: per-syscall activity (latency histograms), exposed
	// via procfs.
	sysLPA := core.NewSyscallLPA(server.Hub())
	fs.Register("/sysprof/"+server.Name()+"/syscalls", func() string {
		var out string
		for _, st := range sysLPA.Stats() {
			out += fmt.Sprintf("%-12s count=%-8d total=%-12v mean=%-10v p99<=%v\n",
				st.Name, st.Count, st.Total, st.Mean, st.P99)
		}
		return out
	})

	ctl := controller.New(func(ch string, v ecode.Value) {
		log.Printf("cpa emit %s: %v", ch, v)
	})
	if err := ctl.RegisterNode(server.Name(), server.Hub()); err != nil {
		return err
	}
	if err := ctl.AttachLPA(server.Name(), "interactions", lpa); err != nil {
		return err
	}
	if err := ctl.AttachDaemon(server.Name(), daemon); err != nil {
		return err
	}
	if err := ctl.AttachBroker(server.Name(), broker); err != nil {
		return err
	}
	var fed *gpa.Frontend
	if fedEndpoints != "" {
		var eps []string
		for _, a := range strings.Split(fedEndpoints, ",") {
			if a = strings.TrimSpace(a); a != "" {
				eps = append(eps, a)
			}
		}
		fe, err := gpa.NewFrontend(eps)
		if err != nil {
			return err
		}
		if err := ctl.AttachFederation(fe); err != nil {
			return err
		}
		fed = fe
		log.Printf("federation frontend attached over %d shard endpoints", len(eps))
	}

	if ntpInterval > 0 {
		// Model the monitored node's clock explicitly (a few ms fast, 50
		// ppm drift) and re-measure its error bound on a cadence. Each
		// measurement is logged and — when a federation frontend is
		// attached — broadcast to the shards so correlation windows track
		// the clock instead of relying on operator-pushed bounds.
		refClock := ntpclock.New(eng, 0, 0)
		nodeClock := ntpclock.New(eng, 2*time.Millisecond, 50e-6)
		server.SetClock(nodeClock.Now)
		syncer := ntpclock.NewSyncer(nodeClock, refClock, sim.NewRNG(11),
			200*time.Microsecond, 50*time.Microsecond)
		nodeName := server.Name()
		mon, err := ntpclock.NewMonitor(eng, syncer, ntpInterval, 8,
			func(offset, bound time.Duration) {
				log.Printf("ntp %s: offset=%v bound=%v", nodeName, offset, bound)
				if fed != nil {
					if _, err := fed.Execute(fmt.Sprintf("clockbound %s %v", nodeName, bound)); err != nil {
						log.Printf("ntp clockbound broadcast: %v", err)
					}
				}
			})
		if err != nil {
			return err
		}
		mon.Start()
		defer mon.Stop()
		if err := ctl.AttachNTP(nodeName, mon); err != nil {
			return err
		}
		log.Printf("ntp monitor on %s every %v", nodeName, ntpInterval)
	}

	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		defer f.Close()
		tw, err := trace.NewWriter(f)
		if err != nil {
			return err
		}
		tw.Attach(server.Hub(), core.MaskDefault())
		defer tw.Detach()
		log.Printf("recording event trace to %s", tracePath)
	}

	// Real listeners.
	psListener, err := net.Listen("tcp", pubsubAddr)
	if err != nil {
		return fmt.Errorf("pubsub listen: %w", err)
	}
	go func() {
		if err := broker.Serve(psListener); err != nil {
			log.Printf("pubsub serve: %v", err)
		}
	}()
	ctlListener, err := net.Listen("tcp", ctlAddr)
	if err != nil {
		return fmt.Errorf("ctl listen: %w", err)
	}
	defer ctlListener.Close()
	go ctl.Serve(ctlListener)
	httpSrv := &http.Server{Addr: httpAddr, Handler: fs}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Printf("http serve: %v", err)
		}
	}()
	defer httpSrv.Close()

	log.Printf("sysprofd up: procfs http://%s/sysprof/ pubsub %s ctl %s",
		httpAddr, pubsubAddr, ctlAddr)

	// Pace virtual time against wall time until interrupted.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(pace)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := eng.RunFor(pace); err != nil {
				return err
			}
		case <-stop:
			log.Printf("shutting down")
			daemon.Stop()
			return nil
		}
	}
}

// buildTopology assembles the requested cluster and returns the node the
// monitoring stack attaches to.
func buildTopology(eng *sim.Engine, network *simnet.Network, topology string) (*simos.Node, error) {
	switch topology {
	case "simple":
		server, err := simos.NewNode(eng, network, "webserver", simos.Config{})
		if err != nil {
			return nil, err
		}
		client, err := simos.NewNode(eng, network, "client", simos.Config{})
		if err != nil {
			return nil, err
		}
		if err := network.Connect(server.ID(), client.ID()); err != nil {
			return nil, err
		}
		startWorkload(server, client)
		return server, nil
	case "nfs":
		svc, err := nfs.Build(eng, network, nfs.DefaultConfig())
		if err != nil {
			return nil, err
		}
		client, err := simos.NewNode(eng, network, "client", simos.Config{})
		if err != nil {
			return nil, err
		}
		if err := network.Connect(client.ID(), svc.Proxy.ID()); err != nil {
			return nil, err
		}
		if _, err := iozone.Start(client, svc.ProxyAddr(), iozone.Config{
			Threads: 8, WriteSize: 16 * 1024, MakeRequest: nfs.NewWriteRequest,
		}); err != nil {
			return nil, err
		}
		return svc.Proxy, nil
	case "rubis":
		svc, err := rubis.Build(eng, network, rubis.DefaultConfig())
		if err != nil {
			return nil, err
		}
		client, err := simos.NewNode(eng, network, "client", simos.Config{})
		if err != nil {
			return nil, err
		}
		for _, b := range svc.Backends {
			if err := network.Connect(client.ID(), b.ID()); err != nil {
				return nil, err
			}
		}
		if _, err := httperf.Start(client, httperf.RoundRobinRouter(svc.BackendAddrs()), httperf.Config{
			Classes: []httperf.ClassSpec{
				{Name: rubis.ClassBidding, Rate: 100, ReqSize: 512,
					Deadline: 100 * time.Millisecond, X: 1, Y: 10},
				{Name: rubis.ClassComment, Rate: 100, ReqSize: 2048,
					Deadline: 400 * time.Millisecond, X: 5, Y: 10},
			},
			RNG: sim.NewRNG(1),
			MakePayload: func(class string, seq uint64) any {
				return rubis.Request{Class: class, Seq: seq}
			},
		}); err != nil {
			return nil, err
		}
		return svc.Backends[0], nil
	}
	return nil, fmt.Errorf("unknown topology %q (want simple, nfs, or rubis)", topology)
}

// startWorkload runs a simple request/response service so the monitor has
// something to observe.
func startWorkload(server, client *simos.Node) {
	ssock := server.MustBind(80)
	csock := client.MustBind(9000)
	server.Spawn("httpd", func(p *simos.Process) {
		var loop func()
		loop = func() {
			p.Recv(ssock, func(m *simos.Message) {
				p.Compute(2*time.Millisecond, func() {
					p.Reply(ssock, m, 8192, nil, loop)
				})
			})
		}
		loop()
	})
	client.Spawn("load", func(p *simos.Process) {
		var loop func()
		loop = func() {
			p.Send(csock, ssock.Addr(), 512, nil, func() {
				p.Recv(csock, func(m *simos.Message) {
					p.Sleep(10*time.Millisecond, loop)
				})
			})
		}
		loop()
	})
}
