// Command sysproflint runs the SysProf static-analysis suite
// (internal/lint) over the module: hot-path invariants — non-blocking
// emit paths, zero-allocation annotations, lock hygiene, frame
// reference balance, atomic access discipline — enforced before the
// code runs, the way the eBPF verifier vets tracing programs before
// they load.
//
// Usage:
//
//	go run ./cmd/sysproflint [-analyzers nonblock,lockcheck] \
//	    [-format text|sarif] [-baseline lint-baseline.json] \
//	    [-write-baseline lint-baseline.json] [packages...]
//
// Packages default to ./... (the whole module). -format sarif writes a
// SARIF 2.1.0 document to stdout instead of the text diagnostics (CI
// uploads it as an artifact). -baseline suppresses findings recorded in
// the given file — matched on (file, analyzer, message), so line drift
// does not resurrect them — while still failing on anything new;
// -write-baseline records the current findings as that accepted set.
// The exit status is 0 when no (non-baselined) diagnostics were
// produced, 1 when there were findings, and 2 on driver errors
// (unreadable module, unknown analyzer, unreadable baseline).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sysprof/internal/lint"
)

func main() {
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	format := flag.String("format", "text", "output format: text or sarif")
	baselinePath := flag.String("baseline", "", "suppress findings recorded in this baseline file; still fail on new ones")
	writeBaseline := flag.String("write-baseline", "", "record the current findings to this baseline file and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sysproflint [-analyzers a,b] [-format text|sarif] [-baseline f] [-write-baseline f] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "sysproflint: unknown format %q (want text or sarif)\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysproflint:", err)
		os.Exit(2)
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysproflint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := lint.Run(root, patterns, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysproflint:", err)
		os.Exit(2)
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sysproflint:", err)
			os.Exit(2)
		}
		if err := lint.NewBaseline(root, diags).Write(f); err != nil {
			fmt.Fprintln(os.Stderr, "sysproflint:", err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sysproflint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "sysproflint: recorded %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}

	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sysproflint:", err)
			os.Exit(2)
		}
		var suppressed int
		diags, suppressed = base.Filter(root, diags)
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "sysproflint: %d baselined finding(s) suppressed\n", suppressed)
		}
	}

	if *format == "sarif" {
		if err := lint.WriteSARIF(os.Stdout, root, diags, suite); err != nil {
			fmt.Fprintln(os.Stderr, "sysproflint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			// One grep-able file:line:col line per finding; evidence chains
			// (cross-package call paths, lock acquisition paths) follow as
			// indented continuation lines.
			fmt.Println(d.Detail())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sysproflint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
