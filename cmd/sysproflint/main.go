// Command sysproflint runs the SysProf static-analysis suite
// (internal/lint) over the module: hot-path invariants — non-blocking
// emit paths, zero-allocation annotations, lock hygiene, frame
// reference balance, atomic access discipline — enforced before the
// code runs, the way the eBPF verifier vets tracing programs before
// they load.
//
// Usage:
//
//	go run ./cmd/sysproflint [-analyzers nonblock,lockcheck] [packages...]
//
// Packages default to ./... (the whole module). The exit status is 0
// when no diagnostics were produced, 1 when there were findings, and 2
// on driver errors (unreadable module, unknown analyzer).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sysprof/internal/lint"
)

func main() {
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sysproflint [-analyzers a,b] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysproflint:", err)
		os.Exit(2)
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysproflint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := lint.Run(root, patterns, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysproflint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		// One grep-able file:line:col line per finding; evidence chains
		// (cross-package call paths, lock acquisition paths) follow as
		// indented continuation lines.
		fmt.Println(d.Detail())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sysproflint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
