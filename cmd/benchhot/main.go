// Command benchhot runs the hot-path benchmarks with -benchmem and
// writes a machine-readable snapshot to BENCH_hotpath.json at the repo
// root, so the perf trajectory is versioned alongside the code instead
// of being rediscovered whenever a regression is suspected.
//
// Usage:
//
//	go run ./cmd/benchhot [-benchtime 1s] [-count 1] [-out BENCH_hotpath.json]
//
// The benchmark set is the same one the CI benchmark-smoke step compiles:
// GPA batch ingest (rows and columns), remote publish (single-record and
// batch), the dissemination flush/encode path, and the CPA per-event
// engines (interpreter vs compiled closures).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// hotPathBenchmarks maps each package to the benchmark pattern that
// covers its hot path.
var hotPathBenchmarks = []struct {
	pkg     string
	pattern string
}{
	{"./internal/gpa/", "BenchmarkIngestBatch"},
	{"./internal/pubsub/", "BenchmarkPublishRemote|BenchmarkPublishBatchRemote"},
	{"./internal/dissem/", "BenchmarkFlushEncode|BenchmarkColumnsEncode"},
	{"./internal/pbio/", "BenchmarkPBIOEncodeReuse"},
	{"./internal/ecode/", "BenchmarkCPAPerEvent"},
}

// guardColumnarIngest fails the run when the columnar ingest path
// measures slower than the row path — the regression the vectorized
// correlation work must never reintroduce. The snapshot is still
// written first so a failing run leaves the numbers to inspect.
func guardColumnarIngest(all []result) error {
	var rows, cols *result
	for i := range all {
		switch all[i].Name {
		case "BenchmarkIngestBatch/rows":
			rows = &all[i]
		case "BenchmarkIngestBatch/columns":
			cols = &all[i]
		}
	}
	if rows == nil || cols == nil {
		return fmt.Errorf("ingest guard: rows/columns measurements missing from BenchmarkIngestBatch")
	}
	if cols.NsPerOp > rows.NsPerOp {
		return fmt.Errorf("columnar ingest regressed: columns %.0f ns/op > rows %.0f ns/op",
			cols.NsPerOp, rows.NsPerOp)
	}
	return nil
}

// guardCPACompiled fails the run when the compiled-closure CPA engine
// measures slower than the tree-walking interpreter it replaced — the
// whole point of compiling verified analyzers is the per-event hot
// path, so "compiled but slower" is a regression, not a wash.
func guardCPACompiled(all []result) error {
	var interp, compiled *result
	for i := range all {
		switch all[i].Name {
		case "BenchmarkCPAPerEvent/interp":
			interp = &all[i]
		case "BenchmarkCPAPerEvent/compiled":
			compiled = &all[i]
		}
	}
	if interp == nil || compiled == nil {
		return fmt.Errorf("cpa guard: interp/compiled measurements missing from BenchmarkCPAPerEvent")
	}
	if compiled.NsPerOp > interp.NsPerOp {
		return fmt.Errorf("compiled CPA regressed: compiled %.0f ns/op > interp %.0f ns/op",
			compiled.NsPerOp, interp.NsPerOp)
	}
	return nil
}

// result is one benchmark measurement in the JSON snapshot.
type result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches `go test -bench -benchmem` output, e.g.
//
//	BenchmarkIngestBatch/rows-8  13884  85962 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func parseBench(pkg, out string) []result {
	var results []result
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bPerOp, allocs int64
		if m[4] != "" {
			bPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			allocs, _ = strconv.ParseInt(m[5], 10, 64)
		}
		// Strip the trailing -GOMAXPROCS suffix so snapshots diff cleanly
		// across machines.
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		results = append(results, result{
			Name: name, Package: strings.Trim(pkg, "./"),
			Iterations: iters, NsPerOp: ns, BPerOp: bPerOp, AllocsPerOp: allocs,
		})
	}
	return results
}

func main() {
	benchtime := flag.String("benchtime", "1s", "per-benchmark measurement time (or Nx iteration count)")
	count := flag.Int("count", 1, "runs per benchmark (last run wins)")
	out := flag.String("out", "BENCH_hotpath.json", "output path for the JSON snapshot")
	flag.Parse()

	var all []result
	for _, hb := range hotPathBenchmarks {
		args := []string{"test", "-run", "^$",
			"-bench", hb.pattern, "-benchmem",
			"-benchtime", *benchtime, "-count", strconv.Itoa(*count), hb.pkg}
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchhot: go %s: %v\n%s", strings.Join(args, " "), err, outBytes)
			os.Exit(1)
		}
		// With -count > 1 the same benchmark repeats; keep the last
		// measurement of each name (the warmest).
		byName := make(map[string]int)
		for _, r := range parseBench(hb.pkg, string(outBytes)) {
			if i, ok := byName[r.Name]; ok {
				all[i] = r
				continue
			}
			byName[r.Name] = len(all)
			all = append(all, r)
		}
	}
	if len(all) == 0 {
		fmt.Fprintln(os.Stderr, "benchhot: no benchmark results parsed")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchhot:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchhot:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(all))
	if err := guardColumnarIngest(all); err != nil {
		fmt.Fprintln(os.Stderr, "benchhot:", err)
		os.Exit(1)
	}
	if err := guardCPACompiled(all); err != nil {
		fmt.Fprintln(os.Stderr, "benchhot:", err)
		os.Exit(1)
	}
}
