// Command sysprofctl drives a sysprofd controller remotely: it sends one
// management command and prints the reply.
//
// Usage:
//
//	sysprofctl [-addr host:port] <command...>
//
// Commands (see internal/controller):
//
//	status
//	granularity <node> <lpa> interaction|class
//	mask <node> <lpa> <groups>            groups: all,sched,syscall,net,fs,default,none
//	window <node> <lpa> <size>
//	bufcap <node> <lpa> <capacity>
//	install-cpa <node> <name> <groups> -- <e-code source>
//	remove-cpa <node> <name>
//
// Federation commands (when a federated gpad tier is attached):
//
//	federation status                     shard liveness + endpoints (JSON)
//	federation endpoints                  current shard endpoint list
//	federation set-endpoints <a,b,...>    replace the shard endpoint list
//	federation retention <n>              per-shard correlated-history cap
//	federation clockbound <node> <dur>    broadcast a node clock-error bound
//
// Example:
//
//	sysprofctl granularity webserver interactions class
//	sysprofctl federation retention 100000
//	sysprofctl install-cpa webserver big net -- 'static int n = 0; if (ev.bytes > 4000) { n++; emit("big", n); } return n;'
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8072", "sysprofd controller address")
	flag.Parse()
	if err := run(*addr, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "sysprofctl:", err)
		os.Exit(1)
	}
}

func run(addr string, args []string) error {
	if len(args) == 0 {
		return errors.New("no command given (try: sysprofctl status)")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()

	cmd := strings.Join(args, " ")
	if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
		return fmt.Errorf("send: %w", err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return errors.New("connection closed before reply")
	}
	first := sc.Text()
	switch {
	case strings.HasPrefix(first, "-"):
		return errors.New(strings.TrimPrefix(first, "-"))
	case strings.HasPrefix(first, "+"):
		fmt.Println(strings.TrimPrefix(first, "+"))
		for sc.Scan() {
			line := sc.Text()
			if line == "." {
				return nil
			}
			fmt.Println(line)
		}
		return sc.Err()
	}
	return fmt.Errorf("malformed reply %q", first)
}
