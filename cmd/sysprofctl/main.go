// Command sysprofctl drives a sysprofd controller remotely: it sends one
// management command and prints the reply.
//
// Usage:
//
//	sysprofctl [-addr host:port] <command...>
//
// Commands (see internal/controller):
//
//	status
//	granularity <node> <lpa> interaction|class
//	mask <node> <lpa> <groups>            groups: all,sched,syscall,net,fs,default,none
//	window <node> <lpa> <size>
//	bufcap <node> <lpa> <capacity>
//	ntpinterval <node> [<dur>|now]        clock re-measurement cadence / force one
//	install-cpa <node> <name> <groups> -- <e-code source>
//	remove-cpa <node> <name>
//
// Custom-analyzer commands (source read from a file, verified locally
// before it is sent — the full evidence chain prints on rejection; the
// node re-verifies on arrival regardless):
//
//	cpa install <node> <file.ec> [name] [groups]   default name: file base, groups: all
//	cpa verify <file.ec>                           verify only, print verdict
//	cpa remove <node> <name>
//	cpa list <node>
//
// Federation commands (when a federated gpad tier is attached):
//
//	federation status                     shard liveness + endpoints (JSON)
//	federation endpoints                  current shard endpoint list
//	federation set-endpoints <a,b,...>    replace the shard endpoint list
//	federation retention <n>              per-shard correlated-history cap
//	federation clockbound <node> <dur>    broadcast a node clock-error bound
//
// Example:
//
//	sysprofctl granularity webserver interactions class
//	sysprofctl federation retention 100000
//	sysprofctl cpa install webserver latency-watch.ec latency-watch net
package main

import (
	"bufio"
	"encoding/base64"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"

	"sysprof/internal/core"
	"sysprof/internal/ecode"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8072", "sysprofd controller address")
	flag.Parse()
	if err := run(*addr, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "sysprofctl:", err)
		os.Exit(1)
	}
}

func run(addr string, args []string) error {
	if len(args) == 0 {
		return errors.New("no command given (try: sysprofctl status)")
	}
	if args[0] == "cpa" {
		wire, err := cpaCommand(args)
		if err != nil || wire == "" {
			return err
		}
		return send(addr, wire)
	}
	return send(addr, strings.Join(args, " "))
}

// cpaCommand translates the user-facing cpa subcommands into wire
// commands, verifying file-based sources locally first. An empty return
// with nil error means the command completed without needing the wire
// (cpa verify).
func cpaCommand(args []string) (string, error) {
	if len(args) < 2 {
		return "", errors.New("usage: cpa install|verify|remove|list ...")
	}
	switch args[1] {
	case "verify":
		if len(args) != 3 {
			return "", errors.New("usage: cpa verify <file.ec>")
		}
		_, verdict, err := loadAndVerify(args[2])
		if err != nil {
			return "", err
		}
		if !verdict.OK {
			return "", fmt.Errorf("rejected:\n%s", verdict.Render())
		}
		fmt.Printf("ok: worst-case cost %d steps/event\n", verdict.Cost)
		return "", nil
	case "install":
		if len(args) < 4 || len(args) > 6 {
			return "", errors.New("usage: cpa install <node> <file.ec> [name] [groups]")
		}
		node, file := args[2], args[3]
		name := strings.TrimSuffix(filepath.Base(file), ".ec")
		if len(args) >= 5 {
			name = args[4]
		}
		groups := "all"
		if len(args) == 6 {
			groups = args[5]
		}
		src, verdict, err := loadAndVerify(file)
		if err != nil {
			return "", err
		}
		if !verdict.OK {
			return "", fmt.Errorf("%s rejected by the verifier (not sent):\n%s", file, verdict.Render())
		}
		fmt.Printf("verified: worst-case cost %d steps/event\n", verdict.Cost)
		b64 := base64.StdEncoding.EncodeToString(src)
		return fmt.Sprintf("cpa install %s %s %s %s", node, name, groups, b64), nil
	case "remove":
		if len(args) != 4 {
			return "", errors.New("usage: cpa remove <node> <name>")
		}
		return fmt.Sprintf("cpa remove %s %s", args[2], args[3]), nil
	case "list":
		if len(args) != 3 {
			return "", errors.New("usage: cpa list <node>")
		}
		return "cpa list " + args[2], nil
	}
	return "", fmt.Errorf("unknown cpa command %q", args[1])
}

// loadAndVerify reads an E-Code file and verifies it under the CPA
// environment, using the real path as the diagnostic filename so the
// evidence chain is clickable.
func loadAndVerify(path string) ([]byte, *ecode.Verdict, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	verdict, err := core.VerifyCPA(path, string(src))
	if err != nil {
		return nil, nil, err
	}
	return src, verdict, nil
}

func send(addr, cmd string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()

	if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
		return fmt.Errorf("send: %w", err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return errors.New("connection closed before reply")
	}
	first := sc.Text()
	switch {
	case strings.HasPrefix(first, "-"):
		return errors.New(strings.TrimPrefix(first, "-"))
	case strings.HasPrefix(first, "+"):
		fmt.Println(strings.TrimPrefix(first, "+"))
		for sc.Scan() {
			line := sc.Text()
			if line == "." {
				return nil
			}
			fmt.Println(line)
		}
		return sc.Err()
	}
	return fmt.Errorf("malformed reply %q", first)
}
