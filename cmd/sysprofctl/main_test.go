package main

import (
	"net"
	"strings"
	"testing"
	"time"

	"sysprof/internal/controller"
	"sysprof/internal/core"
	"sysprof/internal/kprof"
)

// startController serves a live controller over TCP, as sysprofd does.
func startController(t *testing.T) string {
	t.Helper()
	hub := kprof.NewHub(1, func() time.Duration { return 0 })
	hub.SetPerEventCost(0)
	ctl := controller.New(nil)
	if err := ctl.RegisterNode("n1", hub); err != nil {
		t.Fatal(err)
	}
	if err := ctl.AttachLPA("n1", "main", core.NewLPA(hub, core.Config{})); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go ctl.Serve(l)
	return l.Addr().String()
}

func TestRunSendsCommandAndPrintsReply(t *testing.T) {
	addr := startController(t)
	if err := run(addr, []string{"window", "n1", "main", "9"}); err != nil {
		t.Fatalf("ok command failed: %v", err)
	}
	if err := run(addr, []string{"status"}); err != nil {
		t.Fatalf("multi-line reply failed: %v", err)
	}
}

func TestRunSurfacesServerErrors(t *testing.T) {
	addr := startController(t)
	err := run(addr, []string{"bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("127.0.0.1:1", []string{"status"}); err == nil {
		t.Fatal("dial failure not surfaced")
	}
	if err := run("127.0.0.1:1", nil); err == nil {
		t.Fatal("empty command accepted")
	}
}
