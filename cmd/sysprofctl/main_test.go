package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sysprof/internal/controller"
	"sysprof/internal/core"
	"sysprof/internal/kprof"
)

// startController serves a live controller over TCP, as sysprofd does.
func startController(t *testing.T) string {
	t.Helper()
	hub := kprof.NewHub(1, func() time.Duration { return 0 })
	hub.SetPerEventCost(0)
	ctl := controller.New(nil)
	if err := ctl.RegisterNode("n1", hub); err != nil {
		t.Fatal(err)
	}
	if err := ctl.AttachLPA("n1", "main", core.NewLPA(hub, core.Config{})); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go ctl.Serve(l)
	return l.Addr().String()
}

func TestRunSendsCommandAndPrintsReply(t *testing.T) {
	addr := startController(t)
	if err := run(addr, []string{"window", "n1", "main", "9"}); err != nil {
		t.Fatalf("ok command failed: %v", err)
	}
	if err := run(addr, []string{"status"}); err != nil {
		t.Fatalf("multi-line reply failed: %v", err)
	}
}

func TestRunSurfacesServerErrors(t *testing.T) {
	addr := startController(t)
	err := run(addr, []string{"bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("127.0.0.1:1", []string{"status"}); err == nil {
		t.Fatal("dial failure not surfaced")
	}
	if err := run("127.0.0.1:1", nil); err == nil {
		t.Fatal("empty command accepted")
	}
}

// TestCPAInstallEndToEnd: a verified analyzer file installs over the
// live control channel and shows up in cpa list.
func TestCPAInstallEndToEnd(t *testing.T) {
	addr := startController(t)
	dir := t.TempDir()
	file := filepath.Join(dir, "watch.ec")
	src := `
static int n = 0;
if (ev.type == "net_rx" && ev.bytes > 512) { n++; }
return n;
`
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(addr, []string{"cpa", "install", "n1", file, "watch", "net"}); err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := run(addr, []string{"cpa", "list", "n1"}); err != nil {
		t.Fatalf("list: %v", err)
	}
	if err := run(addr, []string{"cpa", "remove", "n1", "watch"}); err != nil {
		t.Fatalf("remove: %v", err)
	}
}

// TestCPAInstallRejectsHostileClientSide: a hostile file is rejected
// before anything is sent, with the file path and line in the chain.
func TestCPAInstallRejectsHostileClientSide(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "hostile.ec")
	if err := os.WriteFile(file, []byte("while (true) { }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Unroutable address: proof the rejection happens without the wire.
	err := run("127.0.0.1:1", []string{"cpa", "install", "n1", file})
	if err == nil {
		t.Fatal("hostile analyzer not rejected")
	}
	if !strings.Contains(err.Error(), file+":1:1") || !strings.Contains(err.Error(), "termination") {
		t.Fatalf("rejection lacks file:line evidence chain: %v", err)
	}
	// cpa verify reports the same verdict.
	err = run("127.0.0.1:1", []string{"cpa", "verify", file})
	if err == nil || !strings.Contains(err.Error(), "not provably bounded") {
		t.Fatalf("verify err = %v", err)
	}
}
