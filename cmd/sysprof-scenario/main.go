// Command sysprof-scenario runs a declarative chaos scenario on the
// deterministic simulator and writes its machine-readable report to
// BENCH_scenario_<name>.json. Scenarios come from the builtin registry
// (-name) or a TOML file (-f); all randomness — fleet generation,
// startup jitter, workload arrivals, chaos target selection, packet
// loss — derives from one seed, so the same invocation always produces
// a byte-identical report.
//
// Usage:
//
//	go run ./cmd/sysprof-scenario -list
//	go run ./cmd/sysprof-scenario -name chaos-small
//	go run ./cmd/sysprof-scenario -f examples/chaos-1k/scenario.toml -seed 7
//	go run ./cmd/sysprof-scenario -name happy-small -check
//
// -check is the regression guard: after writing the fresh report it is
// compared byte for byte against the committed snapshot of the same
// name, and any difference fails the run (benchhot style: the file is
// written first so a failing run leaves the numbers to inspect).
// Intentional behavior changes re-bless the snapshot by committing the
// regenerated file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"sysprof/internal/scenario"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sysprof-scenario: "+format+"\n", args...)
	os.Exit(1)
}

func loadSpec(name, file string, seed int64) (scenario.Spec, error) {
	var spec scenario.Spec
	switch {
	case name != "" && file != "":
		return spec, fmt.Errorf("-name and -f are mutually exclusive")
	case name != "":
		builtin, ok := scenario.Builtins()[name]
		if !ok {
			return spec, fmt.Errorf("unknown builtin scenario %q (use -list)", name)
		}
		spec = builtin
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return spec, err
		}
		spec, err = scenario.ParseSpec(string(src))
		if err != nil {
			return spec, fmt.Errorf("%s: %w", file, err)
		}
	default:
		return spec, fmt.Errorf("one of -name or -f is required (use -list for builtins)")
	}
	if seed != 0 {
		spec.Seed = seed
	}
	return spec, nil
}

func main() {
	name := flag.String("name", "", "builtin scenario to run (see -list)")
	file := flag.String("f", "", "TOML scenario file to run")
	seed := flag.Int64("seed", 0, "override the scenario seed (0 = keep the spec's)")
	outDir := flag.String("out", ".", "directory for BENCH_scenario_<name>.json")
	check := flag.Bool("check", false, "fail if the report differs from the committed snapshot")
	list := flag.Bool("list", false, "list builtin scenarios and exit")
	flag.Parse()

	if *list {
		builtins := scenario.Builtins()
		names := make([]string, 0, len(builtins))
		for n := range builtins {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			s := builtins[n]
			fmt.Printf("%-12s %4d nodes, %d shards, %d chaos events, seed %d, %v\n",
				n, s.Fleet.Nodes, s.Monitor.Shards, len(s.Chaos), s.Seed, s.Duration)
		}
		return
	}

	spec, err := loadSpec(*name, *file, *seed)
	if err != nil {
		fail("%v", err)
	}

	rep, err := scenario.Run(spec)
	if err != nil {
		fail("%v", err)
	}
	buf, err := rep.EncodeJSON()
	if err != nil {
		fail("%v", err)
	}

	outPath := filepath.Join(*outDir, "BENCH_scenario_"+rep.Name+".json")
	// When checking, read the committed snapshot before overwriting it.
	var snapshot []byte
	if *check {
		snapshot, err = os.ReadFile(outPath)
		if err != nil {
			fail("-check: %v (run once without -check to create the snapshot)", err)
		}
	}
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		fail("%v", err)
	}
	fmt.Printf("wrote %s: %d/%d requests completed, correlation %.2f%%, %d chaos events, %d unaccounted records\n",
		outPath, rep.Workload.Completed, rep.Workload.Dispatched,
		rep.CorrelationRatePct, len(rep.Chaos), rep.UnaccountedRecords)

	if err := rep.Check(spec.Guard); err != nil {
		fail("guard: %v", err)
	}
	if *check {
		if err := rep.CompareSnapshot(snapshot); err != nil {
			fail("%v", err)
		}
		fmt.Printf("snapshot check passed: %s\n", outPath)
	}
}
