// Command gpad runs the Global Performance Analyzer as a standalone
// process: it subscribes to one or more sysprofd pub-sub endpoints over
// TCP, correlates the interaction records they publish, and periodically
// prints per-node load summaries and (optionally) dumps correlated
// end-to-end interactions as JSON lines.
//
// Retention: -max-correlated and -max-correlated-age bound the in-memory
// correlated history for long runs; with -dump set, -dump-interval
// periodically appends the history to the dump file and truncates it
// from memory (dump-and-truncate), so nothing is lost to the caps.
//
// Usage:
//
//	gpad [-subscribe host:port,host:port] [-interval 2s] [-dump file]
//	     [-max-correlated n] [-max-correlated-age d] [-dump-interval d]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"sysprof/internal/dissem"
	"sysprof/internal/gpa"
	"sysprof/internal/pbio"
	"sysprof/internal/pubsub"
)

func main() {
	subscribe := flag.String("subscribe", "127.0.0.1:8071", "comma-separated sysprofd pub-sub addresses")
	interval := flag.Duration("interval", 2*time.Second, "summary print interval")
	dump := flag.String("dump", "", "append correlated interactions (JSON lines) to this file on exit")
	query := flag.String("query", "", "serve the GPA query protocol on this TCP address (e.g. 127.0.0.1:8073)")
	maxCorrelated := flag.Int("max-correlated", 1<<18, "cap on in-memory correlated interactions (0 = unbounded)")
	maxCorrelatedAge := flag.Duration("max-correlated-age", 0, "evict correlated interactions older than this (0 = no age bound)")
	dumpInterval := flag.Duration("dump-interval", 0, "with -dump: periodically dump-and-truncate the correlated history (0 = only on exit)")
	flag.Parse()
	opts := options{
		addrs:            strings.Split(*subscribe, ","),
		interval:         *interval,
		dumpPath:         *dump,
		queryAddr:        *query,
		maxCorrelated:    *maxCorrelated,
		maxCorrelatedAge: *maxCorrelatedAge,
		dumpInterval:     *dumpInterval,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "gpad:", err)
		os.Exit(1)
	}
}

type options struct {
	addrs            []string
	interval         time.Duration
	dumpPath         string
	queryAddr        string
	maxCorrelated    int
	maxCorrelatedAge time.Duration
	dumpInterval     time.Duration
}

func run(opts options) error {
	reg := pbio.NewRegistry()
	if err := dissem.RegisterFormats(reg); err != nil {
		return err
	}
	start := time.Now()
	g := gpa.New(gpa.Config{
		MaxCorrelated:    opts.maxCorrelated,
		MaxCorrelatedAge: opts.maxCorrelatedAge,
	}, func() time.Duration { return time.Since(start) })

	if opts.queryAddr != "" {
		ql, err := net.Listen("tcp", opts.queryAddr)
		if err != nil {
			return fmt.Errorf("query listen: %w", err)
		}
		defer ql.Close()
		go g.Serve(ql)
		log.Printf("query protocol on %s", opts.queryAddr)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, addr := range opts.addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		sub, err := pubsub.Dial(addr, reg, dissem.ChannelInteractions, dissem.ChannelAggregates)
		if err != nil {
			return fmt.Errorf("subscribe %s: %w", addr, err)
		}
		log.Printf("subscribed to %s", addr)
		wg.Add(1)
		go func(addr string, sub *pubsub.Subscriber) {
			defer wg.Done()
			defer sub.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, rec, err := sub.Recv()
				if err != nil {
					log.Printf("%s: stream ended: %v", addr, err)
					return
				}
				switch w := rec.Value.(type) {
				case *dissem.WireRecord:
					g.Ingest(dissem.FromWire(w))
				case *dissem.WireAggregate:
					node, agg := dissem.AggFromWire(w)
					g.IngestAggregate(node, agg)
				}
			}
		}(addr, sub)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(opts.interval)
	defer ticker.Stop()
	var dumpTick <-chan time.Time
	if opts.dumpPath != "" && opts.dumpInterval > 0 {
		dt := time.NewTicker(opts.dumpInterval)
		defer dt.Stop()
		dumpTick = dt.C
	}
	for {
		select {
		case <-ticker.C:
			printSummary(g)
		case <-dumpTick:
			n, err := dumpTo(g, opts.dumpPath, true)
			if err != nil {
				return err
			}
			log.Printf("dumped and truncated %d correlated interactions to %s", n, opts.dumpPath)
		case <-sig:
			close(stop)
			printSummary(g)
			if opts.dumpPath != "" {
				n, err := dumpTo(g, opts.dumpPath, opts.dumpInterval > 0)
				if err != nil {
					return err
				}
				log.Printf("dumped %d correlated interactions to %s", n, opts.dumpPath)
			}
			return nil
		}
	}
}

func printSummary(g *gpa.GPA) {
	st := g.StatsSnapshot()
	fmt.Printf("gpa: ingested=%d correlated=%d pending=%d\n",
		st.Ingested, st.Correlated, g.PendingCount())
	for _, node := range g.Nodes() {
		l := g.ServerLoad(node)
		fmt.Printf("  node %d: %d interactions/window, mean residence %v, mean buffer wait %v\n",
			node, l.Interactions, l.MeanResidence, l.MeanBufferWait)
	}
}

// dumpTo appends the correlated history to path. With truncate set it
// uses DumpAndTruncate, clearing the in-memory history after writing —
// used for periodic dumps (and the final dump when periodic dumping is
// on, so the last batch is not re-appended on top of earlier ones).
func dumpTo(g *gpa.GPA, path string, truncate bool) (int, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if truncate {
		return g.DumpAndTruncate(f)
	}
	n := len(g.Correlated())
	return n, g.Dump(f)
}
