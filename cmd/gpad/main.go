// Command gpad runs the Global Performance Analyzer as a standalone
// process: it subscribes to one or more sysprofd pub-sub endpoints over
// TCP, correlates the interaction records they publish, and periodically
// prints per-node load summaries and (optionally) dumps correlated
// end-to-end interactions as JSON lines.
//
// Usage:
//
//	gpad [-subscribe host:port,host:port] [-interval 2s] [-dump file]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"sysprof/internal/dissem"
	"sysprof/internal/gpa"
	"sysprof/internal/pbio"
	"sysprof/internal/pubsub"
)

func main() {
	subscribe := flag.String("subscribe", "127.0.0.1:8071", "comma-separated sysprofd pub-sub addresses")
	interval := flag.Duration("interval", 2*time.Second, "summary print interval")
	dump := flag.String("dump", "", "append correlated interactions (JSON lines) to this file on exit")
	query := flag.String("query", "", "serve the GPA query protocol on this TCP address (e.g. 127.0.0.1:8073)")
	flag.Parse()
	if err := run(strings.Split(*subscribe, ","), *interval, *dump, *query); err != nil {
		fmt.Fprintln(os.Stderr, "gpad:", err)
		os.Exit(1)
	}
}

func run(addrs []string, interval time.Duration, dumpPath, queryAddr string) error {
	reg := pbio.NewRegistry()
	if err := dissem.RegisterFormats(reg); err != nil {
		return err
	}
	start := time.Now()
	g := gpa.New(gpa.Config{}, func() time.Duration { return time.Since(start) })

	if queryAddr != "" {
		ql, err := net.Listen("tcp", queryAddr)
		if err != nil {
			return fmt.Errorf("query listen: %w", err)
		}
		defer ql.Close()
		go g.Serve(ql)
		log.Printf("query protocol on %s", queryAddr)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		sub, err := pubsub.Dial(addr, reg, dissem.ChannelInteractions, dissem.ChannelAggregates)
		if err != nil {
			return fmt.Errorf("subscribe %s: %w", addr, err)
		}
		log.Printf("subscribed to %s", addr)
		wg.Add(1)
		go func(addr string, sub *pubsub.Subscriber) {
			defer wg.Done()
			defer sub.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, rec, err := sub.Recv()
				if err != nil {
					log.Printf("%s: stream ended: %v", addr, err)
					return
				}
				switch w := rec.Value.(type) {
				case *dissem.WireRecord:
					g.Ingest(dissem.FromWire(w))
				case *dissem.WireAggregate:
					node, agg := dissem.AggFromWire(w)
					g.IngestAggregate(node, agg)
				}
			}
		}(addr, sub)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			printSummary(g)
		case <-sig:
			close(stop)
			printSummary(g)
			if dumpPath != "" {
				if err := dumpTo(g, dumpPath); err != nil {
					return err
				}
				log.Printf("dumped correlated interactions to %s", dumpPath)
			}
			return nil
		}
	}
}

func printSummary(g *gpa.GPA) {
	st := g.StatsSnapshot()
	fmt.Printf("gpa: ingested=%d correlated=%d pending=%d\n",
		st.Ingested, st.Correlated, g.PendingCount())
	for _, node := range g.Nodes() {
		l := g.ServerLoad(node)
		fmt.Printf("  node %d: %d interactions/window, mean residence %v, mean buffer wait %v\n",
			node, l.Interactions, l.MeanResidence, l.MeanBufferWait)
	}
}

func dumpTo(g *gpa.GPA, path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return g.Dump(f)
}
