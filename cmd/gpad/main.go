// Command gpad runs the Global Performance Analyzer as a standalone
// process: it subscribes to one or more sysprofd pub-sub endpoints over
// TCP, correlates the interaction records they publish, and periodically
// prints per-node load summaries and (optionally) dumps correlated
// end-to-end interactions as JSON lines.
//
// Retention: -max-correlated and -max-correlated-age bound the in-memory
// correlated history for long runs; with -dump set, -dump-interval
// periodically appends the history to the dump file and truncates it
// from memory (dump-and-truncate), so nothing is lost to the caps.
//
// Federation: a single gpad is the aggregation point for every monitored
// node; to scale past one process, run N shard analyzers plus a frontend.
//
//	-shard i/N     subscribe to flow-hash shard i of N: the broker routes
//	               each record by its canonical flow hash, so both
//	               endpoints of an interaction reach the same shard and
//	               correlation stays process-local.
//	-frontend a,b  run only the merge frontend over the listed shard
//	               query endpoints (no subscriptions); -query serves the
//	               merged federation query protocol. A dead shard
//	               degrades queries to partial results with an explicit
//	               staleness marker instead of failing them.
//
// Usage:
//
//	gpad [-subscribe host:port,host:port] [-interval 2s] [-dump file]
//	     [-max-correlated n] [-max-correlated-age d] [-dump-interval d]
//	     [-shard i/N] [-query addr] [-wire-compress=false]
//	gpad -frontend shard0:port,shard1:port [-query addr] [-interval 2s]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"sysprof/internal/core"
	"sysprof/internal/dissem"
	"sysprof/internal/gpa"
	"sysprof/internal/pbio"
	"sysprof/internal/pubsub"
)

func main() {
	subscribe := flag.String("subscribe", "127.0.0.1:8071", "comma-separated sysprofd pub-sub addresses")
	interval := flag.Duration("interval", 2*time.Second, "summary print interval")
	dump := flag.String("dump", "", "append correlated interactions (JSON lines) to this file on exit")
	query := flag.String("query", "", "serve the GPA query protocol on this TCP address (e.g. 127.0.0.1:8073)")
	maxCorrelated := flag.Int("max-correlated", 1<<18, "cap on in-memory correlated interactions (0 = unbounded)")
	maxCorrelatedAge := flag.Duration("max-correlated-age", 0, "evict correlated interactions older than this (0 = no age bound)")
	dumpInterval := flag.Duration("dump-interval", 0, "with -dump: periodically dump-and-truncate the correlated history (0 = only on exit)")
	shard := flag.String("shard", "", "subscribe as flow-hash shard i/N of a federated gpad tier (e.g. 0/4)")
	frontend := flag.String("frontend", "", "run the federation merge frontend over these comma-separated shard query endpoints")
	wireCompress := flag.Bool("wire-compress", true, "request per-column compressed frames from the broker (negotiated; either side can veto)")
	pageCompress := flag.Bool("compress-pages", true, "serve (shard) / request (frontend) gzip-compressed correlated-history pages; peers without the capability fall back transparently")
	flag.Parse()
	opts := options{
		addrs:            strings.Split(*subscribe, ","),
		interval:         *interval,
		dumpPath:         *dump,
		queryAddr:        *query,
		maxCorrelated:    *maxCorrelated,
		maxCorrelatedAge: *maxCorrelatedAge,
		dumpInterval:     *dumpInterval,
		wireCompress:     *wireCompress,
		pageCompress:     *pageCompress,
	}
	var err error
	if opts.shardIndex, opts.shardCount, err = parseShard(*shard); err != nil {
		fmt.Fprintln(os.Stderr, "gpad:", err)
		os.Exit(2)
	}
	if *frontend != "" {
		if *shard != "" {
			fmt.Fprintln(os.Stderr, "gpad: -frontend and -shard are mutually exclusive")
			os.Exit(2)
		}
		err = runFrontend(splitAddrs(*frontend), opts)
	} else {
		err = run(opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpad:", err)
		os.Exit(1)
	}
}

type options struct {
	addrs            []string
	interval         time.Duration
	dumpPath         string
	queryAddr        string
	maxCorrelated    int
	maxCorrelatedAge time.Duration
	dumpInterval     time.Duration
	// shardCount > 0 marks this process as shard shardIndex/shardCount of
	// a federated tier: subscriptions carry the selector so the broker
	// only sends this shard's flows.
	shardIndex int
	shardCount int
	// wireCompress asks the broker for per-column compressed (0x05)
	// frames on the subscription links; the broker may still veto.
	wireCompress bool
	// pageCompress serves (shard) or requests (frontend) gzip-compressed
	// correlated-history pages over the query protocol.
	pageCompress bool
}

// parseShard parses "-shard i/N" ("" = unsharded).
func parseShard(s string) (index, count int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/N, e.g. 0/4)", s)
	}
	index, err = strconv.Atoi(i)
	if err == nil {
		count, err = strconv.Atoi(n)
	}
	if err != nil || count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/N with 0 <= i < N)", s)
	}
	return index, count, nil
}

// splitAddrs splits a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// runFrontend runs the federation merge frontend: no subscriptions, just
// the merged query protocol plus periodic merged summaries.
func runFrontend(endpoints []string, opts options) error {
	fe, err := gpa.NewFrontend(endpoints)
	if err != nil {
		return err
	}
	fe.SetCompressedPages(opts.pageCompress)
	if opts.queryAddr != "" {
		ql, err := net.Listen("tcp", opts.queryAddr)
		if err != nil {
			return fmt.Errorf("query listen: %w", err)
		}
		defer ql.Close()
		go fe.Serve(ql)
		log.Printf("federation query protocol on %s (%d shards)", opts.queryAddr, len(endpoints))
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(opts.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			sum, st, err := fe.StatsSnapshot()
			if err != nil {
				log.Printf("federation: %v", err)
				continue
			}
			marker := ""
			if st.Partial {
				marker = fmt.Sprintf(" [partial: %d/%d shards]", st.Shards-len(st.Dead), st.Shards)
			}
			fmt.Printf("federation: ingested=%d correlated=%d pending=%d%s\n",
				sum.Ingested, sum.Correlated, sum.Pending, marker)
		case <-sig:
			if opts.dumpPath != "" {
				f, err := os.OpenFile(opts.dumpPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return err
				}
				st, err := fe.Dump(f)
				f.Close()
				if err != nil {
					return err
				}
				if st.Partial {
					log.Printf("dump is partial: shards %v did not answer", st.Dead)
				}
			}
			return nil
		}
	}
}

func run(opts options) error {
	reg := pbio.NewRegistry()
	if err := dissem.RegisterFormats(reg); err != nil {
		return err
	}
	start := time.Now()
	g := gpa.New(gpa.Config{
		MaxCorrelated:    opts.maxCorrelated,
		MaxCorrelatedAge: opts.maxCorrelatedAge,
	}, func() time.Duration { return time.Since(start) })
	g.SetCompressedPages(opts.pageCompress)

	if opts.queryAddr != "" {
		ql, err := net.Listen("tcp", opts.queryAddr)
		if err != nil {
			return fmt.Errorf("query listen: %w", err)
		}
		defer ql.Close()
		go g.Serve(ql)
		log.Printf("query protocol on %s", opts.queryAddr)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, addr := range opts.addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		d := pubsub.Dialer{Registry: reg, Compress: opts.wireCompress}
		if opts.shardCount > 0 {
			d.Shard, d.Of = opts.shardIndex, opts.shardCount
		}
		sub, err := d.Dial(addr, dissem.ChannelInteractions, dissem.ChannelAggregates)
		if err != nil {
			return fmt.Errorf("subscribe %s: %w", addr, err)
		}
		if opts.shardCount > 0 {
			log.Printf("subscribed to %s as shard %d/%d", addr, opts.shardIndex, opts.shardCount)
		} else {
			log.Printf("subscribed to %s", addr)
		}
		wg.Add(1)
		go func(addr string, sub *pubsub.Subscriber) {
			defer wg.Done()
			defer sub.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, rec, err := sub.Recv()
				if err != nil {
					log.Printf("%s: stream ended: %v", addr, err)
					return
				}
				switch w := rec.Value.(type) {
				case *core.RecordColumns:
					// Columnar interaction batch: one frame, all rows.
					g.IngestColumns(w)
				case *dissem.WireRecord:
					g.Ingest(dissem.FromWire(w))
				case *dissem.WireAggregate:
					node, agg := dissem.AggFromWire(w)
					g.IngestAggregate(node, agg)
				}
			}
		}(addr, sub)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(opts.interval)
	defer ticker.Stop()
	var dumpTick <-chan time.Time
	if opts.dumpPath != "" && opts.dumpInterval > 0 {
		dt := time.NewTicker(opts.dumpInterval)
		defer dt.Stop()
		dumpTick = dt.C
	}
	for {
		select {
		case <-ticker.C:
			printSummary(g)
		case <-dumpTick:
			n, err := dumpTo(g, opts.dumpPath, true)
			if err != nil {
				return err
			}
			log.Printf("dumped and truncated %d correlated interactions to %s", n, opts.dumpPath)
		case <-sig:
			close(stop)
			printSummary(g)
			if opts.dumpPath != "" {
				n, err := dumpTo(g, opts.dumpPath, opts.dumpInterval > 0)
				if err != nil {
					return err
				}
				log.Printf("dumped %d correlated interactions to %s", n, opts.dumpPath)
			}
			return nil
		}
	}
}

func printSummary(g *gpa.GPA) {
	st := g.StatsSnapshot()
	fmt.Printf("gpa: ingested=%d correlated=%d pending=%d\n",
		st.Ingested, st.Correlated, g.PendingCount())
	for _, node := range g.Nodes() {
		l := g.ServerLoad(node)
		fmt.Printf("  node %d: %d interactions/window, mean residence %v, mean buffer wait %v\n",
			node, l.Interactions, l.MeanResidence, l.MeanBufferWait)
	}
}

// dumpTo appends the correlated history to path. With truncate set it
// uses DumpAndTruncate, clearing the in-memory history after writing —
// used for periodic dumps (and the final dump when periodic dumping is
// on, so the last batch is not re-appended on top of earlier ones).
func dumpTo(g *gpa.GPA, path string, truncate bool) (int, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if truncate {
		return g.DumpAndTruncate(f)
	}
	n := len(g.Correlated())
	return n, g.Dump(f)
}
