package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"sysprof/internal/core"
	"sysprof/internal/sim"
	"sysprof/internal/simnet"
	"sysprof/internal/simos"
	"sysprof/internal/trace"
)

// writeTestTrace records a small monitored run to a file.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	network := simnet.NewNetwork(eng)
	server, err := simos.NewNode(eng, network, "s", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := simos.NewNode(eng, network, "c", simos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Connect(server.ID(), client.ID()); err != nil {
		t.Fatal(err)
	}
	tw.Attach(server.Hub(), core.MaskDefault())
	ssock := server.MustBind(80)
	csock := client.MustBind(9000)
	server.Spawn("srv", func(p *simos.Process) {
		var loop func()
		loop = func() {
			p.Recv(ssock, func(m *simos.Message) {
				p.Compute(time.Millisecond, func() { p.Reply(ssock, m, 1000, nil, loop) })
			})
		}
		loop()
	})
	client.Spawn("cli", func(p *simos.Process) {
		var loop func(i int)
		loop = func(i int) {
			if i == 0 {
				return
			}
			p.Send(csock, ssock.Addr(), 200, nil, func() {
				p.Recv(csock, func(m *simos.Message) { loop(i - 1) })
			})
		}
		loop(3)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() == 0 {
		t.Fatal("no events recorded")
	}
	return path
}

func TestAllModes(t *testing.T) {
	path := writeTestTrace(t)
	for _, mode := range []string{"dump", "stats", "replay"} {
		if err := run(mode, path); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
	if err := run("bogus", path); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run("stats", "/nonexistent/file"); err == nil {
		t.Fatal("missing file accepted")
	}
}
