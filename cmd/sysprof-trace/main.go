// Command sysprof-trace inspects and re-analyzes SysProf event traces
// recorded by sysprofd -trace (PBIO event logs).
//
// Usage:
//
//	sysprof-trace -mode dump   file    # print every event
//	sysprof-trace -mode stats  file    # per-type and per-node counts
//	sysprof-trace -mode replay file    # rebuild interaction records offline
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"sysprof/internal/core"
	"sysprof/internal/kprof"
	"sysprof/internal/simnet"
	"sysprof/internal/trace"
)

func main() {
	mode := flag.String("mode", "stats", "dump, stats, or replay")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sysprof-trace [-mode dump|stats|replay] <trace file>")
		os.Exit(2)
	}
	if err := run(*mode, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "sysprof-trace:", err)
		os.Exit(1)
	}
}

func run(mode, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch mode {
	case "dump":
		return dump(f)
	case "stats":
		return stats(f)
	case "replay":
		return replay(f)
	}
	return fmt.Errorf("unknown mode %q", mode)
}

func dump(f *os.File) error {
	_, err := trace.Replay(f, func(ev *kprof.Event) error {
		fmt.Printf("%12v node=%d cpu=%d %-14s pid=%-4d", ev.Time, ev.Node, ev.CPU, ev.Type, ev.PID)
		if ev.Flow != (simnet.FlowKey{}) {
			fmt.Printf(" flow=%s bytes=%d", ev.Flow, ev.Bytes)
		}
		if ev.Proc != "" {
			fmt.Printf(" proc=%s", ev.Proc)
		}
		if ev.Tag != 0 {
			fmt.Printf(" tag=%d", ev.Tag)
		}
		fmt.Println()
		return nil
	})
	return err
}

func stats(f *os.File) error {
	byType := map[kprof.EventType]int{}
	byNode := map[simnet.NodeID]int{}
	var first, last time.Duration
	n, err := trace.Replay(f, func(ev *kprof.Event) error {
		byType[ev.Type]++
		byNode[ev.Node]++
		if byType[ev.Type] == 1 && len(byType) == 1 {
			first = ev.Time
		}
		last = ev.Time
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d events over %v of node time\n\n", n, last-first)
	types := make([]kprof.EventType, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return byType[types[i]] > byType[types[j]] })
	for _, t := range types {
		fmt.Printf("  %-15s %8d\n", t, byType[t])
	}
	fmt.Println()
	nodes := make([]simnet.NodeID, 0, len(byNode))
	for id := range byNode {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, id := range nodes {
		fmt.Printf("  node %-3d %8d events\n", id, byNode[id])
	}
	return nil
}

func replay(f *os.File) error {
	lpas := map[simnet.NodeID]*core.LPA{}
	n, err := trace.ReplaySession(f, func(node simnet.NodeID, hub *kprof.Hub) {
		lpas[node] = core.NewLPA(hub, core.Config{WindowSize: 1 << 16})
	})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d events into %d per-node analyzers\n\n", n, len(lpas))
	nodes := make([]simnet.NodeID, 0, len(lpas))
	for id := range lpas {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, id := range nodes {
		lpa := lpas[id]
		lpa.FlushOpen()
		recs := lpa.Window().Snapshot()
		fmt.Printf("node %d: %d interactions\n", id, len(recs))
		for _, r := range recs {
			fmt.Printf("  %s class=%s user=%v kernel=%v blocked=%v total=%v server=%s\n",
				r.Flow, r.Class,
				r.UserTime.Round(time.Microsecond),
				r.KernelTime().Round(time.Microsecond),
				r.BlockedTime.Round(time.Microsecond),
				r.Residence().Round(time.Microsecond),
				r.ServerProc)
		}
	}
	return nil
}
