// Command sysprof-experiments regenerates every table and figure of the
// SysProf paper's evaluation (§3) plus the DESIGN.md ablations, printing
// paper-style tables.
//
// Usage:
//
//	sysprof-experiments [-exp all|linpack|iperf|fig4|fig5|fig6|fig7|ablations] [-quick]
//
// -quick shrinks run durations ~4x for a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sysprof/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, linpack, iperf, fig4, fig5, fig6, fig7, ablations")
	quick := flag.Bool("quick", false, "shorter runs (~4x faster, noisier)")
	flag.Parse()
	if err := run(*exp, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "sysprof-experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, quick bool) error {
	scale := time.Duration(1)
	if quick {
		scale = 4
	}
	section := func(title string) {
		fmt.Printf("=== %s ===\n", title)
	}
	runLinpack := func() error {
		section("§3.1 micro-benchmark: linpack")
		res, err := bench.RunLinpack(4 * time.Second / scale)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	}
	runIperf := func() error {
		section("§3.1 micro-benchmark: iperf")
		res, err := bench.RunIperf(4 * time.Second / scale)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	}
	runNFS := func() error {
		section("§3.2 shared NFS proxy: Figures 4 and 5")
		res, err := bench.RunNFS(bench.DefaultNFSThreads, 2*time.Second/scale)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	}
	runRUBiS := func() error {
		section("§3.3 multi-tier web service: Figures 6 and 7")
		cfg := bench.DefaultRUBiSConfig()
		cfg.Duration /= scale
		cmp, err := bench.RunRUBiSComparison(cfg)
		if err != nil {
			return err
		}
		fmt.Println(cmp.Render())
		return nil
	}
	runAblations := func() error {
		section("ablations: SysProf's performance gears")
		sel, err := bench.RunAblationSelective(2 * time.Second / scale)
		if err != nil {
			return err
		}
		fmt.Println(sel.Render())
		buf, err := bench.RunAblationBuffers(2000, 64, 50*time.Microsecond, 2*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Println(buf.Render())
		enc, err := bench.RunAblationEncoding(1000)
		if err != nil {
			return err
		}
		fmt.Println(enc.Render())
		hash, err := bench.RunAblationHashing(512, 200000)
		if err != nil {
			return err
		}
		fmt.Println(hash.Render())
		hier, err := bench.RunAblationHierarchy(10000, 4)
		if err != nil {
			return err
		}
		fmt.Println(hier.Render())
		return nil
	}

	switch exp {
	case "linpack":
		return runLinpack()
	case "iperf":
		return runIperf()
	case "fig4", "fig5":
		return runNFS()
	case "fig6", "fig7":
		return runRUBiS()
	case "ablations":
		return runAblations()
	case "all":
		for _, f := range []func() error{runLinpack, runIperf, runNFS, runRUBiS, runAblations} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", exp)
}
