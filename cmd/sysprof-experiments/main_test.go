package main

import "testing"

// TestRunQuickSmoke executes every experiment in quick mode — the same
// code path `sysprof-experiments -quick` takes — so regressions in any
// runner fail CI, not the user.
func TestRunQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, exp := range []string{"linpack", "iperf", "fig4", "fig6", "ablations"} {
		if err := run(exp, true); err != nil {
			t.Fatalf("experiment %s: %v", exp, err)
		}
	}
	if err := run("nosuch", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
